//! The raster engine: setup, coarse raster, and fine raster of splat OBBs
//! into 2×2-fragment quads (paper §V-A: setup → coarse raster → Hi-z →
//! fine raster).
//!
//! Splats are rendered as oriented bounding boxes (two triangles sharing a
//! diagonal — geometrically the OBB parallelogram), so the inside test is
//! performed against the parallelogram: a pixel is covered when its
//! coordinates in the OBB's axis frame are within `[-1, 1]²`.

use gsplat::math::{Mat2, Vec2};
use gsplat::splat::Splat;
use gsplat::stream::SplatStream;

use crate::quad::Quad;
use crate::tiles::{TileId, Tiling};

/// Per-primitive setup state computed by the setup unit: the inverse of the
/// OBB axis matrix, used for the fine-raster inside test (the hardware
/// equivalent computes triangle edge equations; for an OBB the two
/// formulations accept exactly the same pixels).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplatSetup {
    center: Vec2,
    /// Maps a pixel offset from the center into OBB axis coordinates.
    inv_axes: Mat2,
    /// Screen-space AABB (min, max) of the OBB.
    pub aabb: (Vec2, Vec2),
}

impl SplatSetup {
    /// Runs triangle/edge setup for a splat. Returns `None` for degenerate
    /// (zero-area) OBBs, which the hardware would cull here.
    pub fn new(splat: &Splat) -> Option<Self> {
        let axes = Mat2::from_cols(splat.axis_major, splat.axis_minor);
        let inv_axes = axes.inverse()?;
        Some(Self {
            center: splat.center,
            inv_axes,
            aabb: splat.aabb(),
        })
    }

    /// [`SplatSetup::new`] reading splat `i` from a SoA [`SplatStream`].
    ///
    /// The stream stores the exact field values of the AoS splat, and the
    /// construction performs the same operations, so the setup — and every
    /// raster decision downstream of it — is bit-identical to the scalar
    /// path's.
    pub fn from_stream(stream: &SplatStream, i: usize) -> Option<Self> {
        let (axis_major, axis_minor) = stream.axes(i);
        let axes = Mat2::from_cols(axis_major, axis_minor);
        let inv_axes = axes.inverse()?;
        let center = stream.center(i);
        let ext = Vec2::new(
            axis_major.x.abs() + axis_minor.x.abs(),
            axis_major.y.abs() + axis_minor.y.abs(),
        );
        Some(Self {
            center,
            inv_axes,
            aabb: (center - ext, center + ext),
        })
    }

    /// Fine-raster inside test at a pixel center.
    #[inline]
    pub fn covers(&self, px: f32, py: f32) -> bool {
        let local = self.inv_axes * (Vec2::new(px, py) - self.center);
        local.x.abs() <= 1.0 && local.y.abs() <= 1.0
    }
}

/// Output of rasterizing one primitive within one screen tile.
#[derive(Debug, Clone, Default)]
pub struct TileRasterOutput {
    /// Quads with at least one covered fragment, in raster scan order.
    pub quads: Vec<Quad>,
    /// 8×8 raster tiles visited by the coarse raster.
    pub coarse_tiles: u64,
}

/// Rasterizes one primitive (already set up) within one screen tile,
/// producing covered quads in scan order.
///
/// Mirrors the hardware flow: the coarse raster walks the raster tiles of
/// the screen tile that intersect the primitive's AABB; the fine raster
/// tests each pixel of a visited raster tile and assembles 2×2 quads.
pub fn rasterize_in_tile(
    setup: &SplatSetup,
    splat_index: u32,
    tile: TileId,
    tiling: &Tiling,
    raster_tile_px: u32,
) -> TileRasterOutput {
    let mut quads = Vec::new();
    let coarse_tiles =
        rasterize_in_tile_into(setup, splat_index, tile, tiling, raster_tile_px, &mut quads);
    TileRasterOutput {
        quads,
        coarse_tiles,
    }
}

/// [`rasterize_in_tile`] appending into a caller-provided quad buffer (the
/// allocation-free frame-loop entry point). Returns the coarse-raster tile
/// count.
pub fn rasterize_in_tile_into(
    setup: &SplatSetup,
    splat_index: u32,
    tile: TileId,
    tiling: &Tiling,
    raster_tile_px: u32,
    quads: &mut Vec<Quad>,
) -> u64 {
    let (tile_x0, tile_y0) = tiling.tile_origin(tile);
    let tile_x1 = (tile_x0 + tiling.tile_px()).min(tiling.width());
    let tile_y1 = (tile_y0 + tiling.tile_px()).min(tiling.height());

    // Clip the primitive AABB to this tile.
    let min_x = setup.aabb.0.x.max(tile_x0 as f32);
    let min_y = setup.aabb.0.y.max(tile_y0 as f32);
    let max_x = setup.aabb.1.x.min(tile_x1 as f32 - 1.0);
    let max_y = setup.aabb.1.y.min(tile_y1 as f32 - 1.0);
    if min_x > max_x || min_y > max_y {
        return 0;
    }

    // Coarse raster: visit intersecting raster tiles.
    let rt0_x = (min_x as u32 - tile_x0) / raster_tile_px;
    let rt0_y = (min_y as u32 - tile_y0) / raster_tile_px;
    let rt1_x = (max_x as u32 - tile_x0) / raster_tile_px;
    let rt1_y = (max_y as u32 - tile_y0) / raster_tile_px;

    let mut coarse_tiles = 0u64;
    for rty in rt0_y..=rt1_y {
        for rtx in rt0_x..=rt1_x {
            coarse_tiles += 1;
            let rt_x0 = tile_x0 + rtx * raster_tile_px;
            let rt_y0 = tile_y0 + rty * raster_tile_px;
            fine_raster_tile(
                setup,
                splat_index,
                rt_x0,
                rt_y0,
                raster_tile_px,
                tile,
                tiling,
                (min_x, min_y, max_x, max_y),
                quads,
            );
        }
    }
    coarse_tiles
}

/// Fine raster of one 8×8 raster tile: tests pixels quad by quad.
#[allow(clippy::too_many_arguments)]
fn fine_raster_tile(
    setup: &SplatSetup,
    splat_index: u32,
    rt_x0: u32,
    rt_y0: u32,
    raster_tile_px: u32,
    tile: TileId,
    tiling: &Tiling,
    clip: (f32, f32, f32, f32),
    quads: &mut Vec<Quad>,
) {
    let (min_x, min_y, max_x, max_y) = clip;
    // Quad-aligned bounds within the raster tile, clipped to the AABB so we
    // do not evaluate obviously-outside quads (the hardware's fine raster
    // similarly walks only candidate stamps).
    let qx0 = ((min_x as u32).max(rt_x0) & !1).max(rt_x0 & !1);
    let qy0 = ((min_y as u32).max(rt_y0) & !1).max(rt_y0 & !1);
    let qx1 = (max_x as u32)
        .min(rt_x0 + raster_tile_px - 1)
        .min(tiling.width() - 1);
    let qy1 = (max_y as u32)
        .min(rt_y0 + raster_tile_px - 1)
        .min(tiling.height() - 1);

    let mut qy = qy0;
    while qy <= qy1 {
        let mut qx = qx0;
        while qx <= qx1 {
            let mut coverage = 0u8;
            for i in 0..4u32 {
                let px = qx + (i & 1);
                let py = qy + (i >> 1);
                if px < tiling.width()
                    && py < tiling.height()
                    && setup.covers(px as f32 + 0.5, py as f32 + 0.5)
                {
                    coverage |= 1 << i;
                }
            }
            if coverage != 0 {
                quads.push(Quad {
                    tile,
                    pos: tiling.quad_pos(qx, qy),
                    origin: (qx, qy),
                    coverage,
                    splat: splat_index,
                });
            }
            qx += 2;
        }
        qy += 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsplat::math::Vec3;

    fn axis_splat(cx: f32, cy: f32, rx: f32, ry: f32) -> Splat {
        Splat {
            center: Vec2::new(cx, cy),
            depth: 1.0,
            conic: (1.0 / (rx * rx), 0.0, 1.0 / (ry * ry)),
            axis_major: Vec2::new(rx, 0.0),
            axis_minor: Vec2::new(0.0, ry),
            color: Vec3::splat(1.0),
            opacity: 0.9,
            source: 0,
        }
    }

    fn tiling() -> Tiling {
        Tiling::new(64, 64, 16, 4)
    }

    #[test]
    fn setup_rejects_degenerate_obb() {
        let mut s = axis_splat(10.0, 10.0, 4.0, 4.0);
        s.axis_minor = Vec2::ZERO;
        assert!(SplatSetup::new(&s).is_none());
        assert!(SplatSetup::new(&axis_splat(8.0, 8.0, 2.0, 2.0)).is_some());
    }

    #[test]
    fn from_stream_matches_aos_setup() {
        let mut s = axis_splat(20.0, 36.0, 5.0, 3.0);
        s.axis_major = Vec2::new(3.0, 4.0);
        s.axis_minor = Vec2::new(-1.2, 0.9);
        let stream = SplatStream::from_splats(std::slice::from_ref(&s));
        assert_eq!(SplatSetup::from_stream(&stream, 0), SplatSetup::new(&s));
        // Degenerate OBB rejected identically.
        let mut d = s;
        d.axis_minor = Vec2::ZERO;
        let stream = SplatStream::from_splats(std::slice::from_ref(&d));
        assert!(SplatSetup::from_stream(&stream, 0).is_none());
    }

    #[test]
    fn covers_matches_obb_geometry() {
        let s = axis_splat(8.0, 8.0, 4.0, 2.0);
        let setup = SplatSetup::new(&s).unwrap();
        assert!(setup.covers(8.0, 8.0));
        assert!(setup.covers(11.9, 8.0));
        assert!(!setup.covers(12.1, 8.0));
        assert!(!setup.covers(8.0, 10.5));
    }

    #[test]
    fn rotated_obb_covers_rotated_extent() {
        let mut s = axis_splat(32.0, 32.0, 1.0, 1.0);
        // 45°-rotated axes with length 8 and 2.
        let d = std::f32::consts::FRAC_1_SQRT_2;
        s.axis_major = Vec2::new(8.0 * d, 8.0 * d);
        s.axis_minor = Vec2::new(-2.0 * d, 2.0 * d);
        let setup = SplatSetup::new(&s).unwrap();
        assert!(setup.covers(36.0, 36.0)); // along the major diagonal
        assert!(!setup.covers(36.0, 28.0)); // perpendicular, outside minor
    }

    #[test]
    fn fully_covered_tile_produces_all_quads() {
        // A huge splat covering the whole 16x16 tile → 64 quads, all full.
        let s = axis_splat(8.0, 8.0, 100.0, 100.0);
        let setup = SplatSetup::new(&s).unwrap();
        let out = rasterize_in_tile(&setup, 0, TileId { x: 0, y: 0 }, &tiling(), 8);
        assert_eq!(out.quads.len(), 64);
        assert!(out.quads.iter().all(|q| q.coverage == 0xF));
        assert_eq!(out.coarse_tiles, 4); // 2x2 raster tiles of 8x8
    }

    #[test]
    fn small_splat_emits_few_quads() {
        let s = axis_splat(8.0, 8.0, 1.4, 1.4);
        let setup = SplatSetup::new(&s).unwrap();
        let out = rasterize_in_tile(&setup, 3, TileId { x: 0, y: 0 }, &tiling(), 8);
        assert!(!out.quads.is_empty() && out.quads.len() <= 4);
        let frags: u32 = out.quads.iter().map(|q| q.coverage_count()).sum();
        // ~2.8x2.8 px box around (8,8) covers pixels 6..10 in each axis.
        assert!((4..=16).contains(&frags), "frags = {frags}");
        assert!(out.quads.iter().all(|q| q.splat == 3));
    }

    #[test]
    fn out_of_tile_splat_produces_nothing() {
        let s = axis_splat(8.0, 8.0, 2.0, 2.0);
        let setup = SplatSetup::new(&s).unwrap();
        let out = rasterize_in_tile(&setup, 0, TileId { x: 3, y: 3 }, &tiling(), 8);
        assert!(out.quads.is_empty());
        assert_eq!(out.coarse_tiles, 0);
    }

    #[test]
    fn coverage_agrees_with_direct_test() {
        // Every emitted fragment passes `covers`; no covered pixel missed.
        let mut s = axis_splat(20.0, 36.0, 5.0, 3.0);
        let d = 0.6f32;
        s.axis_major = Vec2::new(5.0 * d, 5.0 * (1.0 - d));
        s.axis_minor = Vec2::new(-3.0 * (1.0 - d), 3.0 * d);
        let setup = SplatSetup::new(&s).unwrap();
        let t = tiling();
        let mut emitted = std::collections::HashSet::new();
        for ty in 0..4 {
            for tx in 0..4 {
                let out = rasterize_in_tile(&setup, 0, TileId { x: tx, y: ty }, &t, 8);
                for q in out.quads {
                    for i in 0..4 {
                        if q.covers(i) {
                            emitted.insert(q.fragment_xy(i));
                        }
                    }
                }
            }
        }
        for y in 0..64u32 {
            for x in 0..64u32 {
                let expect = setup.covers(x as f32 + 0.5, y as f32 + 0.5);
                assert_eq!(
                    emitted.contains(&(x, y)),
                    expect,
                    "pixel ({x},{y}) mismatch"
                );
            }
        }
    }

    #[test]
    fn quads_are_in_scan_order_within_tile() {
        let s = axis_splat(8.0, 8.0, 100.0, 100.0);
        let setup = SplatSetup::new(&s).unwrap();
        let out = rasterize_in_tile(&setup, 0, TileId { x: 0, y: 0 }, &tiling(), 8);
        // Raster-tile-major, then scan order within; positions never repeat.
        let mut seen = std::collections::HashSet::new();
        for q in &out.quads {
            assert!(seen.insert((q.origin.0, q.origin.1)));
        }
    }
}
