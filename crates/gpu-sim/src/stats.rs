//! Pipeline statistics: work counters per unit, cache behaviour, timing and
//! utilisation — everything Figs. 6, 16, 18 and 23 are computed from.

use serde::{Deserialize, Serialize};

/// Hardware units tracked for utilisation (Fig. 6 reports PROP, CROP,
/// Raster Engine and SM).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Unit {
    /// Vertex processing and operations (assembly, tile identification).
    Vpo,
    /// Tile-grid coalescing unit (VR-Pipe extension; pass-through off).
    Tgc,
    /// Raster engine (setup + coarse + fine raster).
    Raster,
    /// Tile coalescing unit.
    Tc,
    /// Depth/stencil ROP — hosts the early-termination test/update.
    Zrop,
    /// Pre-ROP: quad ordering and (VR-Pipe) the quad reorder unit.
    Prop,
    /// Programmable shader cores.
    Sm,
    /// Color ROP: blending.
    Crop,
    /// L2 bandwidth (consumed by ROP-cache misses).
    L2,
    /// DRAM bandwidth.
    Dram,
}

/// All units in pipeline order.
pub const ALL_UNITS: [Unit; 10] = [
    Unit::Vpo,
    Unit::Tgc,
    Unit::Raster,
    Unit::Tc,
    Unit::Zrop,
    Unit::Prop,
    Unit::Sm,
    Unit::Crop,
    Unit::L2,
    Unit::Dram,
];

impl Unit {
    /// Display name matching the paper's figure labels.
    pub fn name(self) -> &'static str {
        match self {
            Unit::Vpo => "VPO",
            Unit::Tgc => "TGC",
            Unit::Raster => "Raster Engine",
            Unit::Tc => "TC",
            Unit::Zrop => "ZROP",
            Unit::Prop => "PROP",
            Unit::Sm => "SM",
            Unit::Crop => "CROP",
            Unit::L2 => "L2",
            Unit::Dram => "DRAM",
        }
    }

    /// Index into dense per-unit arrays.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Unit::Vpo => 0,
            Unit::Tgc => 1,
            Unit::Raster => 2,
            Unit::Tc => 3,
            Unit::Zrop => 4,
            Unit::Prop => 5,
            Unit::Sm => 6,
            Unit::Crop => 7,
            Unit::L2 => 8,
            Unit::Dram => 9,
        }
    }
}

/// Hit/miss counters for one cache.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed (line fill from the next level).
    pub misses: u64,
    /// Dirty lines written back.
    pub writebacks: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in `[0, 1]`; 1.0 for an untouched cache.
    pub fn hit_rate(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Complete statistics of one simulated draw call.
#[derive(Debug, Default, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineStats {
    // ---- work counters ----
    /// Primitives submitted (visible splats).
    pub primitives: u64,
    /// Primitives culled at triangle setup because their OBB axes are
    /// singular (zero-area splats the hardware would reject); counted, not
    /// silently dropped, so degenerate inputs stay observable.
    pub degenerate_prims: u64,
    /// Primitive-to-tile-grid insertions performed by the TGC unit.
    pub tgc_insertions: u64,
    /// TGC bin flushes.
    pub tgc_flushes: u64,
    /// TGC flushes forced by capacity eviction (bin pressure), a subset of
    /// `tgc_flushes`.
    pub tgc_evictions: u64,
    /// Raster-tile (8×8) visits in coarse raster.
    pub coarse_tiles: u64,
    /// Quads emitted by fine raster.
    pub raster_quads: u64,
    /// Fragments covered by raster quads.
    pub raster_fragments: u64,
    /// Quad insertions into TC bins.
    pub tc_insertions: u64,
    /// TC bin flushes.
    pub tc_flushes: u64,
    /// TC flushes forced by bin-table pressure (oldest-bin eviction).
    pub tc_evictions: u64,
    /// Quads tested by the ZROP early-termination test (HET only).
    pub zrop_term_tests: u64,
    /// Quads discarded by the termination test (all covered pixels
    /// terminated).
    pub zrop_term_discards: u64,
    /// Fragments discarded by the termination test.
    pub zrop_term_discarded_fragments: u64,
    /// Termination-bit update requests sent by the alpha test unit.
    pub term_updates: u64,
    /// Warps launched for fragment shading.
    pub warps_launched: u64,
    /// Quad slots occupied across launched warps (≤ 8 × warps).
    pub warp_quad_slots_used: u64,
    /// Fragments shaded (alpha evaluated) in the SMs.
    pub shaded_fragments: u64,
    /// Fragments killed by alpha pruning (α < 1/255).
    pub alpha_pruned_fragments: u64,
    /// Quad pairs merged in the shader (QM only).
    pub merged_pairs: u64,
    /// Quads blended by CROP.
    pub crop_quads: u64,
    /// Fragments blended by CROP.
    pub crop_fragments: u64,
    /// Quads dropped before CROP because no fragment survived.
    pub dead_quads: u64,
    /// Screen tiles whose every pixel crossed the termination threshold
    /// during the draw (HET variants; the tile-granularity transmittance
    /// saturation the fast path exploits).
    pub retired_tiles: u64,
    /// TC flushes of retired tiles discarded wholesale by the tile flag
    /// (`Soa` kernel on HET variants only): one ZROP tile-flag read
    /// replaces the flush's per-quad stencil-line tests.
    pub retired_tile_skips: u64,

    // ---- caches ----
    /// CROP color-cache behaviour.
    pub crop_cache: CacheStats,
    /// Z-cache (stencil) behaviour.
    pub z_cache: CacheStats,

    // ---- timing (filled by the timing engine) ----
    /// Total draw-call cycles.
    pub total_cycles: u64,
    /// Busy cycles per unit (indexed by [`Unit::index`]).
    pub busy_cycles: [u64; 10],
}

impl PipelineStats {
    /// Utilisation of `unit` in `[0, 1]` (Fig. 6's metric:
    /// measured throughput / max throughput = busy / total).
    pub fn utilization(&self, unit: Unit) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            self.busy_cycles[unit.index()] as f64 / self.total_cycles as f64
        }
    }

    /// The most-utilised unit — the pipeline bottleneck.
    pub fn bottleneck(&self) -> Unit {
        *ALL_UNITS
            .iter()
            .max_by(|a, b| {
                self.utilization(**a)
                    .partial_cmp(&self.utilization(**b))
                    .unwrap()
            })
            .expect("ALL_UNITS is non-empty")
    }

    /// Average warp occupancy: fraction of warp quad slots holding a quad.
    pub fn warp_occupancy(&self) -> f64 {
        if self.warps_launched == 0 {
            0.0
        } else {
            self.warp_quad_slots_used as f64 / (self.warps_launched * 8) as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_indices_are_dense_and_unique() {
        let mut seen = [false; 10];
        for u in ALL_UNITS {
            assert!(!seen[u.index()], "duplicate index for {:?}", u);
            seen[u.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn cache_hit_rate() {
        let c = CacheStats {
            hits: 3,
            misses: 1,
            writebacks: 0,
        };
        assert!((c.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 1.0);
    }

    #[test]
    fn utilization_and_bottleneck() {
        let mut s = PipelineStats {
            total_cycles: 1000,
            ..PipelineStats::default()
        };
        s.busy_cycles[Unit::Crop.index()] = 900;
        s.busy_cycles[Unit::Sm.index()] = 300;
        assert!((s.utilization(Unit::Crop) - 0.9).abs() < 1e-12);
        assert_eq!(s.bottleneck(), Unit::Crop);
    }

    #[test]
    fn warp_occupancy_bounds() {
        let mut s = PipelineStats::default();
        assert_eq!(s.warp_occupancy(), 0.0);
        s.warps_launched = 10;
        s.warp_quad_slots_used = 40;
        assert!((s.warp_occupancy() - 0.5).abs() < 1e-12);
    }
}
