//! Microbenchmarks of the fixed-function units (paper §VII-A, Fig. 20),
//! re-run against the simulator's models instead of real Ampere hardware.
//!
//! The paper used these experiments to *derive* the model parameters (CROP
//! cache ≈ 16 KB, quad-granularity ROPs, 32 TC bins); here they validate
//! that our models reproduce the measured behaviour.

use gsplat::color::PixelFormat;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::binning::BinTable;
use crate::cache::Cache;
use crate::config::GpuConfig;

/// Result of one CROP-cache working-set probe (Fig. 20a).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CropCacheProbe {
    /// Rectangle footprint described, e.g. (8, 16).
    pub rect: (u32, u32),
    /// Number of rectangles drawn.
    pub rects: u32,
    /// Total color data touched, in bytes.
    pub data_bytes: usize,
    /// L2 accesses caused by CROP-cache misses *after warmup* — zero while
    /// the working set fits.
    pub l2_accesses: u64,
}

/// Fig. 20a: draws `rects` rectangles of `rect_w`×`rect_h` at random
/// non-overlapping tile-aligned positions, re-blending them repeatedly, and
/// reports whether the steady-state working set stays inside the CROP cache.
pub fn crop_cache_probe(
    cfg: &GpuConfig,
    rect_w: u32,
    rect_h: u32,
    rects: u32,
    seed: u64,
) -> CropCacheProbe {
    let mut rng = StdRng::seed_from_u64(seed);
    // Fully associative: this probe measures *capacity* (as Fig. 20a does);
    // set conflicts at random positions would blur the 16 KB edge.
    let lines = cfg.crop_cache_bytes / cfg.cache_line_bytes;
    let mut cache = Cache::new(cfg.crop_cache_bytes, cfg.cache_line_bytes, lines);
    let bpp = cfg.pixel_format.bytes_per_pixel();
    // Framebuffer lines: a 128-B line holds 16 RGBA16F pixels, laid out as
    // a 4×4 pixel block (GOB-style tiling).
    let block = 4u32;
    let fb_w_blocks = 2048 / block;

    // Random distinct block-aligned origins.
    let mut origins = Vec::with_capacity(rects as usize);
    let mut used = std::collections::HashSet::new();
    while origins.len() < rects as usize {
        let ox = rng.gen_range(0..(2048 - rect_w) / block) * block;
        let oy = rng.gen_range(0..(2048 - rect_h) / block) * block;
        if used.insert((ox, oy)) {
            origins.push((ox, oy));
        }
    }

    let touch = |cache: &mut Cache, origins: &[(u32, u32)]| -> u64 {
        let mut misses = 0;
        for &(ox, oy) in origins {
            for by in (0..rect_h).step_by(block as usize) {
                for bx in (0..rect_w).step_by(block as usize) {
                    let line = ((oy + by) / block) as u64 * fb_w_blocks as u64
                        + ((ox + bx) / block) as u64;
                    if !cache.access(line, true) {
                        misses += 1;
                    }
                }
            }
        }
        misses
    };

    // Warmup pass fills the cache; the measured passes count L2 traffic.
    touch(&mut cache, &origins);
    let mut l2 = 0;
    for _ in 0..4 {
        l2 += touch(&mut cache, &origins);
    }
    CropCacheProbe {
        rect: (rect_w, rect_h),
        rects,
        data_bytes: rects as usize * (rect_w * rect_h) as usize * bpp,
        l2_accesses: l2,
    }
}

/// Fig. 20b: ROP pixel throughput per cycle by color format.
pub fn rop_pixels_per_cycle(cfg: &GpuConfig, format: PixelFormat) -> u32 {
    let mut c = cfg.clone();
    c.pixel_format = format;
    c.crop_quads_per_cycle() * 4
}

/// Fig. 20c: normalized render time as a function of quads per pixel.
///
/// ROPs operate at quad granularity, so blending P pixels delivered as
/// `q` quads per pixel costs `q` quad-slots per pixel: partially covered
/// quads waste ROP lanes. Time is normalized to the fully-packed case
/// (0.25 quads per pixel).
pub fn rop_time_vs_quads_per_pixel(quads_per_pixel: f32) -> f32 {
    assert!(
        (0.25..=1.0).contains(&quads_per_pixel),
        "quads per pixel must be in [0.25, 1]"
    );
    quads_per_pixel / 0.25
}

/// Result of the tile-binning warp-launch experiment (§VII-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileBinningProbe {
    /// Number of distinct screen tiles the rectangles rotate through.
    pub tiles: u32,
    /// Rectangles drawn (one quad each).
    pub rects: u32,
    /// Warps launched after binning.
    pub warps: u64,
}

/// §VII-A tile-binning microbench: draws 2×2 rectangles round-robin across
/// `tiles` screen tiles and counts launched warps. With ≤ 32 tiles the
/// quads coalesce into full warps; at 33 tiles every insertion evicts the
/// oldest bin and each warp carries a single quad.
pub fn tile_binning_probe(cfg: &GpuConfig, tiles: u32, rects: u32) -> TileBinningProbe {
    let mut tc: BinTable<u32, u32> = BinTable::new(cfg.tc_bins, cfg.tc_bin_size);
    let quads_per_warp = cfg.quads_per_warp() as u64;
    let mut warps = 0u64;
    let mut count_flush = |items: usize| {
        warps += (items as u64).div_ceil(quads_per_warp);
    };
    for i in 0..rects {
        let tile = i % tiles;
        for f in tc.insert(tile, i) {
            count_flush(f.items.len());
        }
    }
    for f in tc.drain() {
        count_flush(f.items.len());
    }
    TileBinningProbe {
        tiles,
        rects,
        warps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crop_cache_fits_16kb_of_rectangles() {
        let cfg = GpuConfig::default();
        // 16 rectangles of 8×16 px at RGBA16F = 16 KB: fits, no L2 traffic.
        let fit = crop_cache_probe(&cfg, 8, 16, 16, 42);
        assert_eq!(fit.data_bytes, 16 * 1024);
        assert_eq!(fit.l2_accesses, 0, "16KB working set must fit");
        // 24 rectangles = 24 KB: thrashes.
        let spill = crop_cache_probe(&cfg, 8, 16, 24, 42);
        assert!(spill.l2_accesses > 0, "24KB working set must spill");
    }

    #[test]
    fn rop_throughput_matches_fig20b() {
        let cfg = GpuConfig::default();
        assert_eq!(rop_pixels_per_cycle(&cfg, PixelFormat::Rgba8), 16);
        assert_eq!(rop_pixels_per_cycle(&cfg, PixelFormat::Rgba16F), 8);
    }

    #[test]
    fn quad_granularity_penalty() {
        assert_eq!(rop_time_vs_quads_per_pixel(0.25), 1.0);
        assert_eq!(rop_time_vs_quads_per_pixel(1.0), 4.0);
        assert!((rop_time_vs_quads_per_pixel(0.5) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn tile_binning_cliff_at_33_tiles() {
        let cfg = GpuConfig::default();
        // Paper: 320 rectangles / 32 tiles → ~67 warps.
        let ok = tile_binning_probe(&cfg, 32, 320);
        assert!(ok.warps <= 70, "expected coalesced warps, got {}", ok.warps);
        // Paper: 330 rectangles / 33 tiles → 330 warps.
        let bad = tile_binning_probe(&cfg, 33, 330);
        assert_eq!(bad.warps, 330, "each quad must launch alone");
    }

    #[test]
    #[should_panic(expected = "quads per pixel")]
    fn quads_per_pixel_out_of_range_panics() {
        let _ = rop_time_vs_quads_per_pixel(0.1);
    }
}
