//! Hierarchical-Z (Hi-z) test unit — the raster-tile-granularity depth
//! cull between coarse and fine raster (paper §V-A).
//!
//! Volume rendering draws with depth testing off, so the Gaussian pipeline
//! bypasses this unit; it exists because VR-Pipe extends a *general*
//! graphics pipeline that must keep running conventional opaque geometry
//! (the paper's generality argument versus dedicated accelerators,
//! §VII-C). The unit keeps one conservative `max-z` per raster tile and
//! rejects raster tiles whose nearest incoming depth is farther than
//! everything already stored.

use serde::{Deserialize, Serialize};

/// Hierarchical-Z buffer: one conservative farthest-depth entry per raster
/// tile (smaller depth = nearer, OpenGL window-space convention).
///
/// # Examples
///
/// ```
/// use gpu_sim::hiz::HiZBuffer;
/// let mut hiz = HiZBuffer::new(64, 64, 8);
/// // An opaque surface at depth 0.3 covers tile (0, 0)...
/// hiz.update(0, 0, 0.3);
/// // ...so geometry entirely behind it is rejected without fine raster.
/// assert!(!hiz.test(0, 0, 0.5));
/// assert!(hiz.test(0, 0, 0.2));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HiZBuffer {
    tiles_x: u32,
    tiles_y: u32,
    tile_px: u32,
    /// Farthest depth that could still be visible in each raster tile.
    max_z: Vec<f32>,
    /// Statistics: tests performed and tiles rejected.
    tests: u64,
    rejects: u64,
}

impl HiZBuffer {
    /// Creates a cleared Hi-z buffer for a `width`×`height` target with
    /// `tile_px` raster tiles (cleared to the far plane, 1.0).
    ///
    /// # Panics
    ///
    /// Panics on zero dimensions.
    pub fn new(width: u32, height: u32, tile_px: u32) -> Self {
        assert!(width > 0 && height > 0 && tile_px > 0, "empty Hi-z target");
        let tiles_x = width.div_ceil(tile_px);
        let tiles_y = height.div_ceil(tile_px);
        Self {
            tiles_x,
            tiles_y,
            tile_px,
            max_z: vec![1.0; (tiles_x * tiles_y) as usize],
            tests: 0,
            rejects: 0,
        }
    }

    #[inline]
    fn index(&self, px: u32, py: u32) -> usize {
        let tx = (px / self.tile_px).min(self.tiles_x - 1);
        let ty = (py / self.tile_px).min(self.tiles_y - 1);
        (ty * self.tiles_x + tx) as usize
    }

    /// Tests whether geometry with nearest depth `min_depth` could be
    /// visible in the raster tile containing `(px, py)`. Returns `false`
    /// when the whole tile is provably occluded.
    pub fn test(&mut self, px: u32, py: u32, min_depth: f32) -> bool {
        self.tests += 1;
        let visible = min_depth <= self.max_z[self.index(px, py)];
        if !visible {
            self.rejects += 1;
        }
        visible
    }

    /// Conservatively narrows the tile's max-z after opaque geometry at
    /// `depth` fully covers the raster tile containing `(px, py)`.
    ///
    /// (Real hardware updates from the per-pixel z-buffer's tile maximum;
    /// callers must only call this for full coverage to stay conservative.)
    pub fn update(&mut self, px: u32, py: u32, depth: f32) {
        let i = self.index(px, py);
        if depth < self.max_z[i] {
            self.max_z[i] = depth;
        }
    }

    /// `(tests, rejects)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.tests, self.rejects)
    }

    /// Clears to the far plane and resets counters.
    pub fn clear(&mut self) {
        self.max_z.fill(1.0);
        self.tests = 0;
        self.rejects = 0;
    }
}

/// The late per-pixel depth test (OpenGL `GL_LESS`) against a
/// [`gsplat::framebuffer::DepthStencilBuffer`]: passes when `depth` is
/// nearer than stored, writing on pass.
///
/// # Examples
///
/// ```
/// use gpu_sim::hiz::depth_test_less;
/// use gsplat::framebuffer::DepthStencilBuffer;
/// let mut ds = DepthStencilBuffer::new(4, 4);
/// assert!(depth_test_less(&mut ds, 1, 1, 0.5));
/// assert!(!depth_test_less(&mut ds, 1, 1, 0.7)); // behind
/// assert!(depth_test_less(&mut ds, 1, 1, 0.2));  // nearer
/// ```
pub fn depth_test_less(
    ds: &mut gsplat::framebuffer::DepthStencilBuffer,
    x: u32,
    y: u32,
    depth: f32,
) -> bool {
    if depth < ds.depth(x, y) {
        ds.set_depth(x, y, depth);
        true
    } else {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsplat::framebuffer::DepthStencilBuffer;

    #[test]
    fn cleared_buffer_accepts_everything() {
        let mut hiz = HiZBuffer::new(32, 32, 8);
        for (x, y) in [(0, 0), (31, 31), (16, 8)] {
            assert!(hiz.test(x, y, 0.999));
        }
        assert_eq!(hiz.stats(), (3, 0));
    }

    #[test]
    fn occluder_rejects_farther_tiles_only() {
        let mut hiz = HiZBuffer::new(32, 32, 8);
        hiz.update(4, 4, 0.25); // tile (0,0)
        assert!(!hiz.test(7, 7, 0.5), "behind occluder, same tile");
        assert!(hiz.test(7, 7, 0.1), "in front of occluder");
        assert!(hiz.test(12, 4, 0.5), "different tile unaffected");
        assert_eq!(hiz.stats().1, 1);
    }

    #[test]
    fn update_is_monotone() {
        let mut hiz = HiZBuffer::new(16, 16, 8);
        hiz.update(0, 0, 0.5);
        hiz.update(0, 0, 0.8); // farther: must not widen
        assert!(!hiz.test(0, 0, 0.6));
    }

    #[test]
    fn clear_resets_everything() {
        let mut hiz = HiZBuffer::new(16, 16, 8);
        hiz.update(0, 0, 0.1);
        hiz.test(0, 0, 0.5);
        hiz.clear();
        assert!(hiz.test(0, 0, 0.99));
        assert_eq!(hiz.stats(), (1, 0));
    }

    #[test]
    fn hiz_never_rejects_visible_fragments() {
        // Conservativeness: emulate opaque front-to-back draws; any
        // fragment that passes the late z-test must also have passed Hi-z.
        let mut hiz = HiZBuffer::new(16, 16, 8);
        let mut ds = DepthStencilBuffer::new(16, 16);
        let draws = [
            (3u32, 3u32, 0.4f32),
            (3, 3, 0.6),
            (5, 5, 0.3),
            (12, 12, 0.5),
        ];
        for (x, y, d) in draws {
            let hiz_pass = hiz.test(x, y, d);
            let z_pass = depth_test_less(&mut ds, x, y, d);
            assert!(
                !z_pass || hiz_pass,
                "Hi-z rejected a visible fragment at ({x},{y},{d})"
            );
            // Only full-tile occluders may narrow Hi-z; here we never
            // narrow, staying conservative.
        }
    }

    #[test]
    fn depth_test_less_updates_buffer() {
        let mut ds = DepthStencilBuffer::new(4, 4);
        assert!(depth_test_less(&mut ds, 0, 0, 0.9));
        assert!(depth_test_less(&mut ds, 0, 0, 0.5));
        assert_eq!(ds.depth(0, 0), 0.5);
        assert!(!depth_test_less(&mut ds, 0, 0, 0.5), "GL_LESS is strict");
    }
}
