//! Transaction-level pipelined timing engine.
//!
//! The functional pipeline emits a sequence of [`WorkBatch`]es (one per TC
//! bin flush, carrying the cycle cost each hardware unit spends on that
//! batch). The engine replays them through the unit pipeline with the
//! classic flow-shop recurrence
//!
//! ```text
//! finish[i][s] = max(finish[i][s-1], finish[i-1][s]) + service[i][s]
//! ```
//!
//! which models full pipelining across units with in-order batches: the
//! draw-call time converges to the bottleneck unit's total work (plus fill
//! latency), and per-unit utilisation (`busy / total`) reproduces the
//! back-pressure behaviour of Fig. 6 — when CROP saturates, the SMs idle.

use crate::stats::{Unit, ALL_UNITS};

/// Per-unit cycle costs of one batch of work.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct WorkBatch {
    /// Service cycles per unit, indexed by [`Unit::index`].
    pub cycles: [f64; 10],
}

impl WorkBatch {
    /// Adds `cycles` of work on `unit`.
    #[inline]
    pub fn add(&mut self, unit: Unit, cycles: f64) {
        self.cycles[unit.index()] += cycles;
    }

    /// Total cycles across units (not wall time — just a magnitude check).
    pub fn total(&self) -> f64 {
        self.cycles.iter().sum()
    }
}

/// Fixed per-unit pipeline latency applied once per batch traversal
/// (register stages, crossbar hops). Small relative to service times.
const STAGE_LATENCY: f64 = 4.0;

/// The pipelined timing engine. Feed batches in order, then call
/// [`PipelineTimer::finish`].
///
/// # Examples
///
/// ```
/// use gpu_sim::timing::{PipelineTimer, WorkBatch};
/// use gpu_sim::stats::Unit;
/// let mut t = PipelineTimer::new();
/// let mut b = WorkBatch::default();
/// b.add(Unit::Crop, 64.0);
/// b.add(Unit::Sm, 16.0);
/// t.push(b);
/// t.push(b);
/// let (total, busy) = t.finish();
/// // CROP work dominates: ~128 cycles plus pipeline fill.
/// assert!(total as f64 >= 128.0);
/// assert_eq!(busy[Unit::Crop.index()], 128);
/// ```
#[derive(Debug, Clone)]
pub struct PipelineTimer {
    /// Time each stage becomes free to accept the next batch.
    stage_avail: [f64; 10],
    /// Departure time of the last batch from each stage (includes the
    /// forwarding latency, which overlaps with the stage's next service).
    stage_depart: [f64; 10],
    busy: [f64; 10],
    batches: u64,
}

impl Default for PipelineTimer {
    fn default() -> Self {
        Self::new()
    }
}

impl PipelineTimer {
    /// Creates an idle pipeline at cycle 0.
    pub fn new() -> Self {
        Self {
            stage_avail: [0.0; 10],
            stage_depart: [0.0; 10],
            busy: [0.0; 10],
            batches: 0,
        }
    }

    /// Advances the pipeline by one batch.
    pub fn push(&mut self, batch: WorkBatch) {
        let mut upstream_depart = 0.0f64;
        for unit in ALL_UNITS {
            let s = unit.index();
            let service = batch.cycles[s];
            // A stage starts when the batch arrives and the stage is free;
            // the forwarding latency delays downstream arrival only, it
            // does not occupy the stage.
            let start = upstream_depart.max(self.stage_avail[s]);
            let avail = start + service;
            let depart = avail + if service > 0.0 { STAGE_LATENCY } else { 0.0 };
            self.busy[s] += service;
            self.stage_avail[s] = avail;
            self.stage_depart[s] = depart;
            upstream_depart = depart;
        }
        self.batches += 1;
    }

    /// Completes the simulation, returning `(total_cycles, busy_cycles)`.
    pub fn finish(self) -> (u64, [u64; 10]) {
        let total = self
            .stage_depart
            .iter()
            .fold(0.0f64, |a, &b| a.max(b))
            .ceil() as u64;
        let mut busy = [0u64; 10];
        for (b, &f) in busy.iter_mut().zip(self.busy.iter()) {
            *b = f.ceil() as u64;
        }
        (total, busy)
    }

    /// Number of batches pushed so far.
    pub fn batches(&self) -> u64 {
        self.batches
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch_with(pairs: &[(Unit, f64)]) -> WorkBatch {
        let mut b = WorkBatch::default();
        for &(u, c) in pairs {
            b.add(u, c);
        }
        b
    }

    #[test]
    fn single_batch_latency_is_sum_of_services() {
        let mut t = PipelineTimer::new();
        t.push(batch_with(&[(Unit::Raster, 10.0), (Unit::Crop, 20.0)]));
        let (total, busy) = t.finish();
        // 10 + 20 service + 2 stage latencies.
        assert_eq!(total, 10 + 20 + 8);
        assert_eq!(busy[Unit::Raster.index()], 10);
        assert_eq!(busy[Unit::Crop.index()], 20);
    }

    #[test]
    fn steady_state_converges_to_bottleneck() {
        let mut t = PipelineTimer::new();
        let b = batch_with(&[(Unit::Sm, 5.0), (Unit::Crop, 50.0)]);
        for _ in 0..100 {
            t.push(b);
        }
        let (total, busy) = t.finish();
        let crop_work = busy[Unit::Crop.index()];
        assert_eq!(crop_work, 5000);
        // Total is bottleneck-bound: within a few percent of CROP work.
        assert!(total >= crop_work);
        assert!((total as f64) < crop_work as f64 * 1.05, "total {total}");
    }

    #[test]
    fn upstream_bottleneck_also_binds() {
        let mut t = PipelineTimer::new();
        let b = batch_with(&[(Unit::Raster, 40.0), (Unit::Crop, 4.0)]);
        for _ in 0..50 {
            t.push(b);
        }
        let (total, busy) = t.finish();
        assert!(total as f64 >= busy[Unit::Raster.index()] as f64);
        assert!((total as f64) < busy[Unit::Raster.index()] as f64 * 1.1);
    }

    #[test]
    fn batches_preserve_order_per_stage() {
        // Finish times must be monotonically increasing per stage.
        let mut t = PipelineTimer::new();
        t.push(batch_with(&[(Unit::Crop, 10.0)]));
        let f1 = t.stage_avail[Unit::Crop.index()];
        t.push(batch_with(&[(Unit::Crop, 1.0)]));
        let f2 = t.stage_avail[Unit::Crop.index()];
        assert!(f2 > f1);
    }

    #[test]
    fn empty_pipeline_is_zero() {
        let (total, busy) = PipelineTimer::new().finish();
        assert_eq!(total, 0);
        assert!(busy.iter().all(|&b| b == 0));
    }
}
