//! # gpu-sim — transaction-level graphics-pipeline GPU simulator
//!
//! Models the NVIDIA-like baseline GPU of the VR-Pipe paper (Table I): the
//! fixed-function graphics units (VPO, rasterizer, tile binning, PROP,
//! ZROP, CROP with its 16 KB color cache), the SIMT shader-core throughput
//! model, and a pipelined batch timing engine with back-pressure semantics.
//!
//! This crate substitutes for the heavily modified Emerald
//! (gem5 + GPGPU-Sim) infrastructure the paper built on; DESIGN.md §2
//! explains why a transaction-level model preserves the behaviour the
//! paper's results derive from. The pipeline *orchestration* — assembling
//! these units into the Baseline / QM / HET / HET+QM variants — lives in
//! the `vrpipe` crate.
//!
//! ```
//! use gpu_sim::config::GpuConfig;
//! use gpu_sim::microbench::tile_binning_probe;
//!
//! let cfg = GpuConfig::default();
//! // The §VII-A tile-binning cliff: 33 round-robin tiles degenerate to
//! // one quad per warp.
//! assert_eq!(tile_binning_probe(&cfg, 33, 330).warps, 330);
//! ```

pub mod binning;
pub mod cache;
pub mod config;
pub mod hiz;
pub mod microbench;
pub mod quad;
pub mod raster;
pub mod stats;
pub mod stencil;
pub mod tiles;
pub mod timing;

pub use config::GpuConfig;
pub use quad::{Quad, ShadedQuad};
pub use stats::{PipelineStats, Unit};
pub use tiles::{QuadPos, TileGridId, TileId, Tiling};
