//! Screen-space tiling geometry: screen tiles, raster tiles, quads and tile
//! grids, with the coordinate conversions the binning units use.

use serde::{Deserialize, Serialize};

/// Identifier of a 16×16-pixel screen tile: `(tile_x, tile_y)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TileId {
    pub x: u32,
    pub y: u32,
}

/// Identifier of a tile grid (a `grid×grid` block of screen tiles, 64×64 px
/// by default) — the TGC unit's binning granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TileGridId {
    pub x: u32,
    pub y: u32,
}

/// Position of a 2×2 quad *within* a screen tile, `(qx, qy)` each in
/// `0..tile_px/2` (0..8 for 16-px tiles) — the QRU register index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct QuadPos {
    pub x: u8,
    pub y: u8,
}

impl QuadPos {
    /// Linear register index in the QRU's 8×8 register file.
    #[inline]
    pub fn register_index(self) -> usize {
        self.y as usize * 8 + self.x as usize
    }
}

/// Tiling geometry for one render target.
///
/// # Examples
///
/// ```
/// use gpu_sim::tiles::Tiling;
/// let t = Tiling::new(100, 60, 16, 4);
/// assert_eq!(t.tiles_x(), 7); // ceil(100/16)
/// assert_eq!(t.tiles_y(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tiling {
    width: u32,
    height: u32,
    tile_px: u32,
    grid_tiles: u32,
}

impl Tiling {
    /// Creates the tiling for a `width`×`height` viewport with square
    /// screen tiles of `tile_px` and tile grids of `grid_tiles` per side.
    ///
    /// # Panics
    ///
    /// Panics on a zero-sized viewport or tile.
    pub fn new(width: u32, height: u32, tile_px: u32, grid_tiles: u32) -> Self {
        assert!(width > 0 && height > 0, "viewport must be non-empty");
        assert!(tile_px > 0 && grid_tiles > 0, "tile sizes must be non-zero");
        Self {
            width,
            height,
            tile_px,
            grid_tiles,
        }
    }

    /// Viewport width in pixels.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Viewport height in pixels.
    #[inline]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Screen-tile edge in pixels.
    #[inline]
    pub fn tile_px(&self) -> u32 {
        self.tile_px
    }

    /// Number of screen tiles horizontally.
    #[inline]
    pub fn tiles_x(&self) -> u32 {
        self.width.div_ceil(self.tile_px)
    }

    /// Number of screen tiles vertically.
    #[inline]
    pub fn tiles_y(&self) -> u32 {
        self.height.div_ceil(self.tile_px)
    }

    /// Total screen-tile count.
    #[inline]
    pub fn tile_count(&self) -> usize {
        self.tiles_x() as usize * self.tiles_y() as usize
    }

    /// The screen tile containing pixel `(x, y)`.
    #[inline]
    pub fn tile_of_pixel(&self, x: u32, y: u32) -> TileId {
        TileId {
            x: x / self.tile_px,
            y: y / self.tile_px,
        }
    }

    /// The tile grid containing a screen tile.
    #[inline]
    pub fn grid_of_tile(&self, t: TileId) -> TileGridId {
        TileGridId {
            x: t.x / self.grid_tiles,
            y: t.y / self.grid_tiles,
        }
    }

    /// Pixel origin (top-left) of a screen tile.
    #[inline]
    pub fn tile_origin(&self, t: TileId) -> (u32, u32) {
        (t.x * self.tile_px, t.y * self.tile_px)
    }

    /// Quad position within its screen tile for the quad whose top-left
    /// pixel is `(x, y)` (must be even coordinates).
    #[inline]
    pub fn quad_pos(&self, x: u32, y: u32) -> QuadPos {
        debug_assert!(
            x.is_multiple_of(2) && y.is_multiple_of(2),
            "quad origin must be even"
        );
        QuadPos {
            x: ((x % self.tile_px) / 2) as u8,
            y: ((y % self.tile_px) / 2) as u8,
        }
    }

    /// Inclusive screen-tile rectangle `(x0, x1, y0, y1)` overlapped by
    /// the pixel-space AABB `[min, max]`, clamped to the viewport; `None`
    /// when the box is entirely off-screen. The rectangle form lets hot
    /// loops walk tiles (or the enclosing tile grids) without collecting
    /// them.
    pub fn tile_rect_in_aabb(
        &self,
        min: (f32, f32),
        max: (f32, f32),
    ) -> Option<(u32, u32, u32, u32)> {
        if max.0 < 0.0 || max.1 < 0.0 || min.0 >= self.width as f32 || min.1 >= self.height as f32 {
            return None;
        }
        let x0 = (min.0.max(0.0) as u32).min(self.width.saturating_sub(1)) / self.tile_px;
        let y0 = (min.1.max(0.0) as u32).min(self.height.saturating_sub(1)) / self.tile_px;
        let x1 = (max.0.max(0.0) as u32).min(self.width.saturating_sub(1)) / self.tile_px;
        let y1 = (max.1.max(0.0) as u32).min(self.height.saturating_sub(1)) / self.tile_px;
        Some((x0, x1, y0, y1))
    }

    /// Inclusive range of screen tiles overlapped by the pixel-space AABB
    /// `[min, max]`, clamped to the viewport. Empty iterator when the box
    /// is entirely off-screen.
    pub fn tiles_in_aabb(
        &self,
        min: (f32, f32),
        max: (f32, f32),
    ) -> impl Iterator<Item = TileId> + '_ {
        let rect = self.tile_rect_in_aabb(min, max);
        rect.into_iter().flat_map(|(x0, x1, y0, y1)| {
            (y0..=y1).flat_map(move |y| (x0..=x1).map(move |x| TileId { x, y }))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_counts_round_up() {
        let t = Tiling::new(1552, 1040, 16, 4);
        assert_eq!(t.tiles_x(), 97);
        assert_eq!(t.tiles_y(), 65);
        assert_eq!(t.tile_count(), 97 * 65);
    }

    #[test]
    fn pixel_to_tile_and_grid() {
        let t = Tiling::new(256, 256, 16, 4);
        assert_eq!(t.tile_of_pixel(0, 0), TileId { x: 0, y: 0 });
        assert_eq!(t.tile_of_pixel(15, 15), TileId { x: 0, y: 0 });
        assert_eq!(t.tile_of_pixel(16, 0), TileId { x: 1, y: 0 });
        let tile = t.tile_of_pixel(100, 200);
        assert_eq!(tile, TileId { x: 6, y: 12 });
        assert_eq!(t.grid_of_tile(tile), TileGridId { x: 1, y: 3 });
    }

    #[test]
    fn quad_pos_register_index() {
        let t = Tiling::new(64, 64, 16, 4);
        let q = t.quad_pos(18, 34); // tile (1,2), quad offset (1,1)
        assert_eq!(q, QuadPos { x: 1, y: 1 });
        assert_eq!(q.register_index(), 9);
        assert_eq!(t.quad_pos(14, 14).register_index(), 63);
    }

    #[test]
    fn aabb_tile_enumeration() {
        let t = Tiling::new(64, 64, 16, 4);
        let tiles: Vec<TileId> = t.tiles_in_aabb((10.0, 10.0), (20.0, 20.0)).collect();
        assert_eq!(tiles.len(), 4); // spans tiles (0,0)..(1,1)
        let clamped: Vec<TileId> = t.tiles_in_aabb((-100.0, -100.0), (1000.0, 5.0)).collect();
        assert_eq!(clamped.len(), 4); // full row of 4 tiles
    }

    #[test]
    fn aabb_fully_offscreen_is_empty() {
        let t = Tiling::new(64, 64, 16, 4);
        assert_eq!(t.tiles_in_aabb((100.0, 0.0), (200.0, 10.0)).count(), 0);
        assert_eq!(t.tiles_in_aabb((-50.0, -50.0), (-10.0, -10.0)).count(), 0);
    }

    #[test]
    fn tile_origin_roundtrip() {
        let t = Tiling::new(128, 128, 16, 4);
        let (ox, oy) = t.tile_origin(TileId { x: 3, y: 5 });
        assert_eq!((ox, oy), (48, 80));
        assert_eq!(t.tile_of_pixel(ox, oy), TileId { x: 3, y: 5 });
    }
}
