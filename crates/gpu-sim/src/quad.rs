//! The 2×2-fragment quad — the smallest unit of work in the hardware
//! pipeline (paper §II-A: "the ROP units operate at a quad granularity").

use serde::{Deserialize, Serialize};

use crate::tiles::{QuadPos, TileId};

/// A 2×2 block of fragments produced by the fine rasterizer for one
/// primitive, addressed by its screen tile and quad position within it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Quad {
    /// Screen tile containing the quad.
    pub tile: TileId,
    /// Quad position within the tile (the QRU register address).
    pub pos: QuadPos,
    /// Top-left pixel coordinate of the quad in the framebuffer.
    pub origin: (u32, u32),
    /// 4-bit coverage mask: bit i set when fragment i is inside the
    /// primitive. Fragment order: (0,0), (1,0), (0,1), (1,1).
    pub coverage: u8,
    /// Index into the draw call's splat list (the source primitive).
    pub splat: u32,
}

impl Quad {
    /// Pixel coordinate of fragment `i` (0..4).
    ///
    /// # Panics
    ///
    /// Panics (debug) when `i >= 4`.
    #[inline]
    pub fn fragment_xy(&self, i: usize) -> (u32, u32) {
        debug_assert!(i < 4);
        (
            self.origin.0 + (i as u32 & 1),
            self.origin.1 + (i as u32 >> 1),
        )
    }

    /// Number of covered fragments.
    #[inline]
    pub fn coverage_count(&self) -> u32 {
        (self.coverage & 0xF).count_ones()
    }

    /// `true` when fragment `i` is covered.
    #[inline]
    pub fn covers(&self, i: usize) -> bool {
        self.coverage & (1 << i) != 0
    }
}

/// A quad annotated with shaded fragment data, flowing from the SMs to CROP.
///
/// After fragment shading each covered fragment carries a straight-alpha
/// color; after quad merging a fragment may instead carry a *pre-blended*
/// pre-multiplied color pair (the `merged` flag tells CROP which blend to
/// apply — on hardware both reduce to the same `ffb` in pre-multiplied
/// space; we keep the distinction for exact bookkeeping).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShadedQuad {
    /// The rasterized quad.
    pub quad: Quad,
    /// Per-fragment straight RGB color (valid where `alive` bit set).
    pub rgb: [gsplat::math::Vec3; 4],
    /// Per-fragment alpha after Gaussian falloff evaluation.
    pub alpha: [f32; 4],
    /// Bitmask of fragments that survived alpha pruning (subset of
    /// coverage).
    pub alive: u8,
    /// `true` when this quad is the result of a shader-side merge of two
    /// quads; its `rgb`/`alpha` then encode a pre-multiplied partial blend.
    pub merged: bool,
}

impl ShadedQuad {
    /// Number of fragments that will reach the blender.
    #[inline]
    pub fn alive_count(&self) -> u32 {
        (self.alive & 0xF).count_ones()
    }

    /// `true` when no fragment survived (the quad is dropped before CROP).
    #[inline]
    pub fn is_dead(&self) -> bool {
        self.alive & 0xF == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quad() -> Quad {
        Quad {
            tile: TileId { x: 1, y: 2 },
            pos: QuadPos { x: 3, y: 4 },
            origin: (22, 40),
            coverage: 0b1011,
            splat: 9,
        }
    }

    #[test]
    fn fragment_positions() {
        let q = quad();
        assert_eq!(q.fragment_xy(0), (22, 40));
        assert_eq!(q.fragment_xy(1), (23, 40));
        assert_eq!(q.fragment_xy(2), (22, 41));
        assert_eq!(q.fragment_xy(3), (23, 41));
    }

    #[test]
    fn coverage_queries() {
        let q = quad();
        assert_eq!(q.coverage_count(), 3);
        assert!(q.covers(0) && q.covers(1) && !q.covers(2) && q.covers(3));
    }

    #[test]
    fn shaded_quad_alive_accounting() {
        let sq = ShadedQuad {
            quad: quad(),
            rgb: [gsplat::math::Vec3::ZERO; 4],
            alpha: [0.0; 4],
            alive: 0b0001,
            merged: false,
        };
        assert_eq!(sq.alive_count(), 1);
        assert!(!sq.is_dead());
        let dead = ShadedQuad { alive: 0, ..sq };
        assert!(dead.is_dead());
    }
}
