//! Frame-sequence workloads with temporal coherence — the paper's actual
//! deployment scenario. VR-Pipe's per-frame early termination only pays
//! off across a *stream* of temporally coherent frames, so this module
//! turns the single-frame renderers into sequence renderers:
//!
//! * a [`SequenceConfig`] pairs a [`CameraPath`] (orbit, flythrough with
//!   velocity/shake, stereo eye pairs) with a frame budget and viewport;
//! * a [`Session`] preprocesses each frame into persistent scratch — the
//!   depth sort warm-starts from the previous frame's near-sorted order
//!   through [`gsplat::sort::IncrementalSorter`] (bit-exact with the
//!   from-scratch sort), and projection chunks, sort buffers and the SoA
//!   [`SplatStream`] all survive across frames;
//! * any backend renders the frames: [`Session::run`] hands the
//!   preprocessed splats to a caller closure (the three `swrender`
//!   backends plug in here), while [`Session::run_vrpipe`] drives the
//!   simulated hardware pipeline through [`try_draw_in_place`] with
//!   persistent render targets and [`DrawScratch`] — zero steady-state
//!   allocation, and an error (never a panic) on bad configurations.
//!
//! Every frame of a sequence is bit-exact with rendering that frame in
//! isolation: the temporal machinery accelerates, it never approximates
//! (DESIGN.md §6).

use std::sync::{Arc, OnceLock};

use gpu_sim::config::GpuConfig;
use gpu_sim::stats::PipelineStats;
use gpu_sim::tiles::Tiling;
use gsplat::batch::BatchCullState;
use gsplat::camera::{Camera, CameraPath};
use gsplat::framebuffer::{ColorBuffer, DepthStencilBuffer};
use gsplat::index::{cloud_fingerprint, CullState, CullStats, SceneIndex};
use gsplat::preprocess::{
    preprocess_into_clamped, preprocess_into_indexed_batched_clamped,
    preprocess_into_indexed_clamped, preprocess_into_temporal_clamped, PreprocessScratch,
    PreprocessStats,
};
use gsplat::scene::Scene;
use gsplat::sort::ResortStats;
use gsplat::splat::Splat;
use gsplat::stream::SplatStream;
use gsplat::ThreadPolicy;

use crate::pipeline::{try_draw_in_place, DrawError, DrawScratch};
use crate::variant::PipelineVariant;

/// One frame-sequence workload: a camera trajectory, a frame budget and a
/// viewport.
///
/// # Examples
///
/// ```
/// use gsplat::camera::CameraPath;
/// use gsplat::math::Vec3;
/// use vrpipe::SequenceConfig;
/// let cfg = SequenceConfig::new(
///     CameraPath::orbit(Vec3::ZERO, 4.0, 1.5, 0.25),
///     16,
///     160,
///     120,
/// );
/// assert_eq!(cfg.frames, 16);
/// assert!(cfg.temporal);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SequenceConfig {
    /// The camera trajectory.
    pub path: CameraPath,
    /// Number of frames to render.
    pub frames: usize,
    /// Viewport width in pixels.
    pub width: u32,
    /// Viewport height in pixels.
    pub height: u32,
    /// Vertical field of view in radians.
    pub fov_y: f32,
    /// Warm-start the depth sort from the previous frame (`true`, the
    /// point of a sequence) or re-sort every frame from scratch (`false`,
    /// the A/B baseline). Results are bit-exact either way.
    pub temporal: bool,
    /// Preprocess through the spatial index ([`gsplat::index`]): per-cell
    /// frustum classification skips provably-culled cells and replays
    /// cached covariance work under the camera-delta bound. Implies the
    /// temporal warm-started sort. Results are bit-exact with the full
    /// path — only preprocessing cost changes.
    pub indexed: bool,
    /// SH evaluation degree cap for view-dependent color (the quality
    /// ladder's color knob; [`gsplat::sh::MAX_SH_DEGREE`] = no clamp).
    /// Frames rendered under a cap are bit-exact with a scene whose SH
    /// coefficients were truncated to the same degree.
    pub max_sh_degree: u8,
    /// Quality-ladder rung this configuration was derived at (0 = full
    /// quality). Purely descriptive: it tags every
    /// [`SequenceFrameRecord`] so served frames can be audited against a
    /// solo session at the same rung; it does not change any render math.
    pub rung: u8,
}

impl SequenceConfig {
    /// A sequence over `path` with the default 55° field of view and the
    /// temporal fast path enabled.
    pub fn new(path: CameraPath, frames: usize, width: u32, height: u32) -> Self {
        Self {
            path,
            frames,
            width,
            height,
            fov_y: 55f32.to_radians(),
            temporal: true,
            indexed: false,
            max_sh_degree: gsplat::sh::MAX_SH_DEGREE,
            rung: 0,
        }
    }

    /// The same sequence with the SH evaluation degree capped.
    pub fn with_max_sh_degree(mut self, max_sh_degree: u8) -> Self {
        self.max_sh_degree = max_sh_degree;
        self
    }

    /// The same sequence with the temporal warm start disabled.
    pub fn full_sort(mut self) -> Self {
        self.temporal = false;
        self
    }

    /// The same sequence with incremental spatially indexed preprocessing
    /// enabled.
    pub fn with_index(mut self) -> Self {
        self.indexed = true;
        self
    }
}

/// Everything a backend needs to render one frame of a sequence: the
/// camera, the front-to-back sorted splats, the SoA stream mirror (when
/// the session was built [`Session::with_stream`]) and the preprocessing
/// counters.
pub struct FrameInput<'a> {
    /// Frame index within the sequence.
    pub index: usize,
    /// This frame's camera.
    pub camera: &'a Camera,
    /// Visible splats, sorted front-to-back.
    pub splats: &'a [Splat],
    /// SoA mirror of `splats` (empty unless [`Session::with_stream`]).
    pub stream: &'a SplatStream,
    /// Preprocessing statistics of this frame.
    pub preprocess: PreprocessStats,
    /// This frame's incremental-culling counters (all zero unless
    /// [`SequenceConfig::indexed`] is set).
    pub cull: CullStats,
}

/// Per-frame record of a [`Session::run_vrpipe`] sequence.
#[derive(Debug, Clone)]
pub struct SequenceFrameRecord {
    /// Frame index within the sequence.
    pub index: usize,
    /// Preprocessing counters.
    pub preprocess: PreprocessStats,
    /// Draw-call statistics.
    pub stats: PipelineStats,
    /// Fraction of screen tiles fully retired by early termination in
    /// `[0, 1]` (0 for non-HET variants) — the retired-ratio trajectory
    /// across the sequence.
    pub retired_tile_ratio: f64,
    /// Incremental-culling counters of this frame (all zero unless the
    /// sequence ran with [`SequenceConfig::indexed`]).
    pub cull: CullStats,
    /// Quality-ladder rung the frame was rendered at, copied from
    /// [`SequenceConfig::rung`] (0 = full quality).
    pub rung: u8,
}

/// A frame-sequence rendering session: owns every cross-frame buffer so an
/// N-frame sequence allocates like a single frame.
///
/// The session is backend-agnostic — [`Session::run`] preprocesses each
/// frame (temporal warm-started sort, persistent scratch) and hands a
/// [`FrameInput`] to the caller's render closure. [`Session::run_vrpipe`]
/// is the built-in hardware-pipeline backend.
///
/// # Examples
///
/// ```
/// use gsplat::camera::CameraPath;
/// use gsplat::scene::EVALUATED_SCENES;
/// use vrpipe::{SequenceConfig, Session};
///
/// let scene = EVALUATED_SCENES[4].generate_scaled(0.04);
/// let cfg = SequenceConfig::new(
///     CameraPath::orbit(scene.center, scene.view_radius, 1.0, 0.02),
///     4,
///     96,
///     72,
/// );
/// let mut session = Session::default();
/// let counts = session.run(&scene, &cfg, |f| f.splats.len());
/// assert_eq!(counts.len(), 4);
/// assert!(session.resort_stats().repaired > 0);
/// ```
#[derive(Debug, Default)]
pub struct Session {
    policy: ThreadPolicy,
    build_stream: bool,
    pre: PreprocessScratch,
    splats: Vec<Splat>,
    stream: SplatStream,
    /// Spatial index for [`SequenceConfig::indexed`] sequences. Either
    /// this session's own (built lazily per scene, fingerprint-guarded,
    /// reused across runs) or a [`SharedScene`]'s — shared immutable
    /// per-scene data behind an `Arc`, while everything else in the
    /// session is per-stream state.
    index: Option<Arc<SceneIndex>>,
    /// Temporal culling state paired with `index` — always owned by this
    /// session, never shared: per-frame classification and the
    /// epoch-tagged covariance cache follow *this* stream's camera.
    cull: CullState,
    /// Batch state for [`Session::render_stereo_pair`]: the two eyes of a
    /// stereo pair are guaranteed to share the translation bound, so they
    /// share one classification pass and one covariance cache per pair.
    pair_batch: BatchCullState,
    /// Simulated-pipeline draw scratch, reused across frames and
    /// [`Session::run_vrpipe`] calls.
    draw: DrawScratch,
    /// Persistent color target for the vrpipe backend (re-created only
    /// when the viewport or pixel format changes).
    color: Option<ColorBuffer>,
    /// Persistent depth/stencil target paired with `color`.
    depth: Option<DepthStencilBuffer>,
    /// Cached screen-tile count keyed by the tiling geometry it was
    /// computed for, so per-frame vrpipe records don't rebuild the
    /// [`Tiling`] every frame.
    tiles: Option<((u32, u32, u32, u32), f64)>,
}

impl Session {
    /// A session with an explicit host threading policy.
    pub fn new(policy: ThreadPolicy) -> Self {
        Self {
            policy,
            ..Self::default()
        }
    }

    /// Also maintain the SoA [`SplatStream`] mirror each frame, for
    /// backends that consume streams directly (e.g.
    /// `CudaLikeRenderer::render_prepared`).
    pub fn with_stream(mut self) -> Self {
        self.build_stream = true;
        self
    }

    /// Counters of the incremental re-sort across the frames run so far.
    pub fn resort_stats(&self) -> ResortStats {
        self.pre.resort_stats()
    }

    /// Counters of the incremental (indexed) preprocess across the frames
    /// run so far — cells and Gaussians skipped, refreshed, re-projected.
    pub fn cull_stats(&self) -> CullStats {
        self.cull.stats()
    }

    /// Counters of the stereo-pair batch rounds run so far through
    /// [`Session::render_stereo_pair`] (all zero until a pair actually
    /// batched; solo-path fallbacks accumulate into [`Session::cull_stats`]
    /// instead).
    pub fn pair_batch_stats(&self) -> CullStats {
        self.pair_batch.stats()
    }

    /// Forgets the temporal warm start: the sorter's warm-start order and
    /// the [`CullState`]'s classification history / covariance-cache
    /// epochs. Call on a scene or camera cut — and after any run that did
    /// **not** complete cleanly (the serve scheduler calls this when it
    /// rewinds an evicted or failed stream, so a rerun is provably
    /// bit-exact from frame 0 even if the aborted run left mid-frame
    /// state behind).
    pub fn invalidate_temporal(&mut self) {
        self.pre.invalidate_temporal();
        self.cull.invalidate();
        self.pair_batch.invalidate();
    }

    /// Drops the cached spatial index (call when the scene's Gaussians
    /// changed in place; a different scene is detected automatically by
    /// fingerprint).
    pub fn invalidate_index(&mut self) {
        self.index = None;
        self.cull = CullState::default();
        self.pair_batch = BatchCullState::default();
    }

    /// The spatial index this session currently holds — its own or a
    /// [`SharedScene`]'s. `Arc::ptr_eq` against [`SharedScene::index`]
    /// tells the two apart; `None` until an indexed run prepared one.
    pub fn scene_index(&self) -> Option<&Arc<SceneIndex>> {
        self.index.as_ref()
    }

    /// Adopts `index` as this session's spatial index — the sharing seam:
    /// N sessions over one scene each adopt one [`SharedScene`]'s
    /// `Arc<SceneIndex>` instead of building N copies. A no-op when the
    /// session already holds this exact allocation. The per-stream
    /// [`CullState`] is kept: it re-pairs by fingerprint on the next
    /// frame, and cached covariance products stay valid across
    /// same-fingerprint index swaps (they depend only on the cloud bits).
    pub fn attach_index(&mut self, index: Arc<SceneIndex>) {
        if self
            .index
            .as_ref()
            .is_some_and(|own| Arc::ptr_eq(own, &index))
        {
            return;
        }
        self.index = Some(index);
    }

    /// Prepares the session for `cfg` over `scene`: for indexed sequences,
    /// builds (or rebuilds) the session's own spatial index when it has
    /// not seen this scene before. The fingerprint guard catches both a
    /// session re-pointed at a different scene and an in-place mutation of
    /// the same cloud between runs; an unchanged scene provably reuses the
    /// existing allocation (`Arc::ptr_eq` holds across runs).
    ///
    /// [`Session::run`]/[`Session::run_vrpipe`] call this implicitly; it
    /// is public for callers that step frames manually through
    /// [`Session::render_frame`].
    pub fn prepare(&mut self, scene: &Scene, cfg: &SequenceConfig) {
        if !cfg.indexed {
            return;
        }
        let fp = cloud_fingerprint(&scene.gaussians);
        if self.index.as_ref().map(|i| i.fingerprint()) != Some(fp) {
            self.index = Some(Arc::new(SceneIndex::build(&scene.gaussians)));
            self.cull = CullState::default();
        }
    }

    /// [`Session::prepare`] against a [`SharedScene`]: indexed sequences
    /// adopt the shared `Arc<SceneIndex>` (building it on first use)
    /// instead of constructing a private copy.
    pub fn prepare_shared(&mut self, shared: &SharedScene, cfg: &SequenceConfig) {
        if cfg.indexed {
            self.attach_index(Arc::clone(shared.index()));
        }
    }

    /// Preprocesses and renders frame `index` of the sequence — the
    /// single-frame body of [`Session::run`], public so external
    /// schedulers (the [`crate::serve`] server) can interleave frames of
    /// many sessions. For indexed sequences the index must already be in
    /// place ([`Session::prepare`] or [`Session::prepare_shared`]).
    ///
    /// # Panics
    ///
    /// Panics when `cfg.indexed` is set but no index was prepared.
    // vrlint: hot
    pub fn render_frame<R>(
        &mut self,
        scene: &Scene,
        cfg: &SequenceConfig,
        index: usize,
        render: impl FnOnce(FrameInput<'_>) -> R,
    ) -> R {
        self.render_frame_inner(scene, cfg, index, None, render)
    }

    /// [`Session::render_frame`] as one member of a cross-stream batch:
    /// preprocessing replays `batch`'s shared classification pass and
    /// covariance cache instead of this session's own [`CullState`]. The
    /// caller owns the round protocol — `batch.begin_round` must have run
    /// over a camera group this frame's camera belongs to (the
    /// [`crate::serve`] scheduler and [`Session::render_stereo_pair`] do
    /// this). Emitted frames are bit-exact with the solo
    /// [`Session::render_frame`].
    ///
    /// # Panics
    ///
    /// Panics when `cfg.indexed` is unset, no index was prepared, or the
    /// camera falls outside the batch round (see
    /// [`gsplat::preprocess::preprocess_into_indexed_batched`]).
    // vrlint: hot
    pub fn render_frame_batched<R>(
        &mut self,
        scene: &Scene,
        cfg: &SequenceConfig,
        index: usize,
        batch: &mut BatchCullState,
        render: impl FnOnce(FrameInput<'_>) -> R,
    ) -> R {
        assert!(
            cfg.indexed,
            "batched render requires an indexed sequence config"
        );
        self.render_frame_inner(scene, cfg, index, Some(batch), render)
    }

    // vrlint: hot
    fn render_frame_inner<R>(
        &mut self,
        scene: &Scene,
        cfg: &SequenceConfig,
        index: usize,
        batch: Option<&mut BatchCullState>,
        render: impl FnOnce(FrameInput<'_>) -> R,
    ) -> R {
        let camera = cfg
            .path
            .camera(index, cfg.frames, cfg.width, cfg.height, cfg.fov_y);
        let (preprocess, cull) = match batch {
            Some(batch) => {
                let before = batch.stats();
                let preprocess = preprocess_into_indexed_batched_clamped(
                    scene,
                    &camera,
                    self.policy,
                    self.index
                        .as_ref()
                        // vrlint: allow(VL01, reason = "documented precondition: prepare()/prepare_shared() builds the index before any indexed frame")
                        .expect("indexed sequence: call prepare()/prepare_shared() first"),
                    batch,
                    &mut self.pre,
                    &mut self.splats,
                    cfg.max_sh_degree,
                );
                (preprocess, batch.stats().delta_since(&before))
            }
            None => {
                let cull_before = self.cull.stats();
                let preprocess = if cfg.indexed {
                    preprocess_into_indexed_clamped(
                        scene,
                        &camera,
                        self.policy,
                        self.index
                            .as_ref()
                            // vrlint: allow(VL01, reason = "documented precondition: prepare()/prepare_shared() builds the index before any indexed frame")
                            .expect("indexed sequence: call prepare()/prepare_shared() first"),
                        &mut self.cull,
                        &mut self.pre,
                        &mut self.splats,
                        cfg.max_sh_degree,
                    )
                } else if cfg.temporal {
                    preprocess_into_temporal_clamped(
                        scene,
                        &camera,
                        self.policy,
                        &mut self.pre,
                        &mut self.splats,
                        cfg.max_sh_degree,
                    )
                } else {
                    preprocess_into_clamped(
                        scene,
                        &camera,
                        self.policy,
                        &mut self.pre,
                        &mut self.splats,
                        cfg.max_sh_degree,
                    )
                };
                (preprocess, self.cull.stats().delta_since(&cull_before))
            }
        };
        if self.build_stream {
            self.stream.rebuild_from(&self.splats);
        } else {
            self.stream.clear();
        }
        render(FrameInput {
            index,
            camera: &camera,
            splats: &self.splats,
            stream: &self.stream,
            preprocess,
            cull,
        })
    }

    /// Renders `cfg.frames` frames of `scene` along the configured path,
    /// calling `render` once per frame with the preprocessed
    /// [`FrameInput`]. Preprocessing reuses all scratch across frames; the
    /// backend owns whatever per-frame state it needs inside the closure.
    pub fn run<R>(
        &mut self,
        scene: &Scene,
        cfg: &SequenceConfig,
        mut render: impl FnMut(FrameInput<'_>) -> R,
    ) -> Vec<R> {
        self.prepare(scene, cfg);
        (0..cfg.frames)
            .map(|i| self.render_frame(scene, cfg, i, &mut render))
            .collect()
    }

    /// Renders frame `index` through the simulated hardware pipeline —
    /// the single-frame body of [`Session::run_vrpipe`], consuming the
    /// session-owned [`DrawScratch`] and render targets (created on first
    /// use, reset when the viewport or pixel format changes, and kept warm
    /// across frames, runs and serve-scheduler interleavings).
    // vrlint: hot
    pub fn render_frame_vrpipe(
        &mut self,
        scene: &Scene,
        cfg: &SequenceConfig,
        index: usize,
        gpu: &GpuConfig,
        variant: PipelineVariant,
    ) -> Result<SequenceFrameRecord, DrawError> {
        self.render_frame_vrpipe_inner(scene, cfg, index, gpu, variant, None)
    }

    /// [`Session::render_frame_vrpipe`] as one member of a cross-stream
    /// batch — the hardware-pipeline counterpart of
    /// [`Session::render_frame_batched`], with the same round protocol and
    /// bit-exactness guarantee.
    // vrlint: hot
    pub fn render_frame_vrpipe_batched(
        &mut self,
        scene: &Scene,
        cfg: &SequenceConfig,
        index: usize,
        gpu: &GpuConfig,
        variant: PipelineVariant,
        batch: &mut BatchCullState,
    ) -> Result<SequenceFrameRecord, DrawError> {
        assert!(
            cfg.indexed,
            "batched render requires an indexed sequence config"
        );
        self.render_frame_vrpipe_inner(scene, cfg, index, gpu, variant, Some(batch))
    }

    /// Renders stereo pair `pair` — frames `2*pair` (left eye) and
    /// `2*pair + 1` (right eye) — through the simulated hardware pipeline.
    /// On an indexed stereo sequence the two eyes provably share the
    /// translation bound ([`Camera::is_translation_of`]), so the pair runs
    /// as a two-member batch: one cell-classification pass and one
    /// covariance-cache replay serve both eyes through the session's
    /// [`BatchCullState`]. When the bound does not hold (or the sequence is
    /// not indexed) both eyes take the exact solo path instead — either
    /// way, every returned frame is bit-exact with
    /// [`Session::render_frame_vrpipe`] on the same frame index.
    pub fn render_stereo_pair(
        &mut self,
        scene: &Scene,
        cfg: &SequenceConfig,
        pair: usize,
        gpu: &GpuConfig,
        variant: PipelineVariant,
    ) -> Result<(SequenceFrameRecord, SequenceFrameRecord), DrawError> {
        let (l, r) = (2 * pair, 2 * pair + 1);
        let left = cfg
            .path
            .camera(l, cfg.frames, cfg.width, cfg.height, cfg.fov_y);
        let right = cfg
            .path
            .camera(r, cfg.frames, cfg.width, cfg.height, cfg.fov_y);
        let index = match self.index.as_ref() {
            Some(index) if cfg.indexed && right.is_translation_of(&left) => Arc::clone(index),
            _ => {
                // Unprovable delta (or unindexed config): exact solo path
                // for both eyes.
                let a = self.render_frame_vrpipe(scene, cfg, l, gpu, variant)?;
                let b = self.render_frame_vrpipe(scene, cfg, r, gpu, variant)?;
                return Ok((a, b));
            }
        };
        // Take the batch state out so the frame calls can borrow `self`
        // mutably; restored below even when a frame errors.
        let mut batch = std::mem::take(&mut self.pair_batch);
        batch.begin_round(&index, &[left, right]);
        let a = self.render_frame_vrpipe_inner(scene, cfg, l, gpu, variant, Some(&mut batch));
        let b = self.render_frame_vrpipe_inner(scene, cfg, r, gpu, variant, Some(&mut batch));
        self.pair_batch = batch;
        Ok((a?, b?))
    }

    // vrlint: hot
    fn render_frame_vrpipe_inner(
        &mut self,
        scene: &Scene,
        cfg: &SequenceConfig,
        index: usize,
        gpu: &GpuConfig,
        variant: PipelineVariant,
        batch: Option<&mut BatchCullState>,
    ) -> Result<SequenceFrameRecord, DrawError> {
        gpu.validate().map_err(DrawError::InvalidConfig)?;
        // Take the session-owned backend state out so the frame closure
        // can borrow it mutably alongside the preprocessed splats.
        let mut scratch = std::mem::take(&mut self.draw);
        let mut color = match self.color.take() {
            Some(mut c) => {
                if c.width() != cfg.width
                    || c.height() != cfg.height
                    || c.format() != gpu.pixel_format
                {
                    c.reset(cfg.width, cfg.height, gpu.pixel_format);
                }
                c
            }
            None => ColorBuffer::new(cfg.width, cfg.height, gpu.pixel_format),
        };
        let mut ds = match self.depth.take() {
            Some(mut d) => {
                if d.width() != cfg.width || d.height() != cfg.height {
                    d.reset(cfg.width, cfg.height);
                }
                d
            }
            None => DepthStencilBuffer::new(cfg.width, cfg.height),
        };
        let tiling_key = (
            cfg.width.max(1),
            cfg.height.max(1),
            gpu.screen_tile_px,
            gpu.tile_grid_tiles,
        );
        let tiles = match self.tiles {
            Some((key, tiles)) if key == tiling_key => tiles,
            _ => {
                let tiles = Tiling::new(tiling_key.0, tiling_key.1, tiling_key.2, tiling_key.3)
                    .tile_count() as f64;
                self.tiles = Some((tiling_key, tiles));
                tiles
            }
        };
        let record = self.render_frame_inner(scene, cfg, index, batch, |f| {
            let stats =
                try_draw_in_place(f.splats, gpu, variant, &mut color, &mut ds, &mut scratch)?;
            let retired_tile_ratio = if tiles > 0.0 {
                stats.retired_tiles as f64 / tiles
            } else {
                0.0
            };
            Ok(SequenceFrameRecord {
                index: f.index,
                preprocess: f.preprocess,
                stats,
                retired_tile_ratio,
                cull: f.cull,
                rung: cfg.rung,
            })
        });
        self.draw = scratch;
        self.color = Some(color);
        self.depth = Some(ds);
        record
    }

    /// Renders the sequence through the simulated hardware pipeline
    /// (`gpu`/`variant`), reusing the session's [`DrawScratch`] and render
    /// targets across all frames. Returns per-frame records, or a
    /// [`DrawError`]: an invalid configuration is rejected here, before
    /// any frame is preprocessed, instead of panicking mid-sequence.
    pub fn run_vrpipe(
        &mut self,
        scene: &Scene,
        cfg: &SequenceConfig,
        gpu: &GpuConfig,
        variant: PipelineVariant,
    ) -> Result<Vec<SequenceFrameRecord>, DrawError> {
        // Fail fast: an invalid config errors here, before any frame is
        // preprocessed. (`render_frame_vrpipe` re-validates per call — a
        // handful of field checks — because it is also a standalone entry
        // point for external schedulers.)
        gpu.validate().map_err(DrawError::InvalidConfig)?;
        self.prepare(scene, cfg);
        (0..cfg.frames)
            .map(|i| self.render_frame_vrpipe(scene, cfg, i, gpu, variant))
            .collect()
    }
}

/// The immutable per-scene half of a multi-stream workload: the scene and
/// its lazily built, fingerprint-guarded [`SceneIndex`], shared behind
/// `Arc`s by every [`Session`] that streams views of it.
///
/// The split mirrors what each piece of state depends on: everything in
/// here is a pure function of the Gaussian cloud (grid cells, per-Gaussian
/// camera-invariant caches, the content fingerprint), so N head-tracked
/// streams of one scene can read it concurrently — while everything that
/// follows a *camera* (frame classification, the epoch-tagged covariance
/// cache, sorter warm starts, render targets) stays per-stream inside each
/// `Session`.
///
/// # Examples
///
/// ```
/// use gsplat::scene::EVALUATED_SCENES;
/// use std::sync::Arc;
/// use vrpipe::SharedScene;
/// let shared = SharedScene::new(EVALUATED_SCENES[4].generate_scaled(0.04));
/// let a = Arc::clone(shared.index());
/// let b = Arc::clone(shared.index());
/// assert!(Arc::ptr_eq(&a, &b)); // built once, shared forever
/// ```
#[derive(Debug)]
pub struct SharedScene {
    scene: Arc<Scene>,
    /// Content fingerprint of `scene`, computed once at construction.
    fingerprint: u64,
    /// The shared spatial index, built on first [`SharedScene::index`]
    /// call. `OnceLock` keeps `SharedScene: Sync` so worker threads can
    /// race the first build safely (one winner, same bits either way).
    index: OnceLock<Arc<SceneIndex>>,
}

impl SharedScene {
    /// Wraps `scene` for sharing, computing its content fingerprint once.
    pub fn new(scene: Scene) -> Self {
        Self::from_arc(Arc::new(scene))
    }

    /// [`SharedScene::new`] over an existing `Arc<Scene>` (no clone).
    pub fn from_arc(scene: Arc<Scene>) -> Self {
        let fingerprint = cloud_fingerprint(&scene.gaussians);
        Self {
            scene,
            fingerprint,
            index: OnceLock::new(),
        }
    }

    /// The wrapped scene.
    pub fn scene(&self) -> &Scene {
        &self.scene
    }

    /// A handle to the wrapped scene (for moving into worker tasks).
    pub fn scene_arc(&self) -> Arc<Scene> {
        Arc::clone(&self.scene)
    }

    /// Content fingerprint of the wrapped scene (see
    /// [`cloud_fingerprint`]).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The shared spatial index, built exactly once on first use. The
    /// build is fingerprint-guarded by construction: the scene behind the
    /// `Arc` is immutable while shared, so the index's fingerprint always
    /// matches [`SharedScene::fingerprint`] (checked here so a violation
    /// — e.g. interior mutability smuggled into `Scene` — fails loudly
    /// instead of serving a stale index).
    pub fn index(&self) -> &Arc<SceneIndex> {
        let index = self
            .index
            .get_or_init(|| Arc::new(SceneIndex::build(&self.scene.gaussians)));
        assert_eq!(
            index.fingerprint(),
            self.fingerprint,
            "shared scene mutated after its index was built"
        );
        index
    }

    /// The shared index if some caller already built it.
    pub fn index_if_built(&self) -> Option<&Arc<SceneIndex>> {
        self.index.get()
    }

    /// A fresh per-stream [`Session`] prepared for `cfg` over this scene:
    /// indexed configurations adopt the shared index instead of building
    /// their own.
    pub fn session(&self, policy: ThreadPolicy, cfg: &SequenceConfig) -> Session {
        let mut session = Session::new(policy);
        session.prepare_shared(self, cfg);
        session
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{draw, DrawScratch};
    use gsplat::math::Vec3;
    use gsplat::scene::EVALUATED_SCENES;

    /// A frame-coherent orbit: ~0.7° of arc per frame, the granularity of
    /// a real frame loop (a full turn would span ~500 frames; even this is
    /// coarse next to 90 fps head motion).
    fn orbit_cfg(scene: &Scene, frames: usize) -> SequenceConfig {
        SequenceConfig::new(
            CameraPath::orbit(scene.center, scene.view_radius, 1.2, 0.002 * frames as f32),
            frames,
            96,
            72,
        )
    }

    #[test]
    fn sequence_frames_match_isolated_renders_bit_exactly() {
        let scene = EVALUATED_SCENES[4].generate_scaled(0.04);
        let cfg = orbit_cfg(&scene, 6);
        let mut session = Session::default();
        let records = session
            .run_vrpipe(&scene, &cfg, &GpuConfig::default(), PipelineVariant::HetQm)
            .unwrap();
        assert_eq!(records.len(), 6);
        // Re-render each frame in isolation: identical stats.
        for (i, rec) in records.iter().enumerate() {
            let cam = cfg
                .path
                .camera(i, cfg.frames, cfg.width, cfg.height, cfg.fov_y);
            let pre = gsplat::preprocess::preprocess(&scene, &cam);
            let fresh = draw(
                &pre.splats,
                cfg.width,
                cfg.height,
                &GpuConfig::default(),
                PipelineVariant::HetQm,
            );
            assert_eq!(rec.stats, fresh.stats, "frame {i}");
            assert_eq!(rec.preprocess.visible_splats, pre.stats.visible_splats);
        }
        // The coherent orbit must exercise the repair fast path.
        assert!(session.resort_stats().repaired > 0);
    }

    #[test]
    fn temporal_and_full_sort_sequences_are_identical() {
        let scene = EVALUATED_SCENES[2].generate_scaled(0.04);
        let cfg = orbit_cfg(&scene, 5);
        let full = cfg.clone().full_sort();
        let mut a = Session::default();
        let mut b = Session::default();
        let ra = a
            .run_vrpipe(&scene, &cfg, &GpuConfig::default(), PipelineVariant::Het)
            .unwrap();
        let rb = b
            .run_vrpipe(&scene, &full, &GpuConfig::default(), PipelineVariant::Het)
            .unwrap();
        for (x, y) in ra.iter().zip(&rb) {
            assert_eq!(x.stats, y.stats, "frame {}", x.index);
            assert_eq!(x.preprocess, y.preprocess);
        }
        assert!(a.resort_stats().repaired > 0);
        assert_eq!(b.resort_stats().frames, 0, "full sort bypasses the sorter");
    }

    #[test]
    fn run_vrpipe_surfaces_config_errors() {
        let scene = EVALUATED_SCENES[4].generate_scaled(0.03);
        let cfg = orbit_cfg(&scene, 3);
        let bad = GpuConfig {
            tgc_bins: 0,
            ..GpuConfig::default()
        };
        let err = Session::default()
            .run_vrpipe(&scene, &cfg, &bad, PipelineVariant::HetQm)
            .unwrap_err();
        assert!(matches!(err, DrawError::InvalidConfig(_)));
    }

    #[test]
    fn stereo_sequence_produces_left_right_pairs() {
        let scene = EVALUATED_SCENES[4].generate_scaled(0.03);
        let path = CameraPath::orbit(scene.center, scene.view_radius, 1.2, 0.1).stereo(0.065);
        let cfg = SequenceConfig::new(path, 8, 96, 72);
        let mut session = Session::default();
        let eyes = session.run(&scene, &cfg, |f| f.camera.eye());
        assert_eq!(eyes.len(), 8);
        for k in 0..4 {
            let sep = (eyes[2 * k] - eyes[2 * k + 1]).length();
            assert!((sep - 0.065).abs() < 1e-3, "pair {k}: separation {sep}");
        }
    }

    #[test]
    fn session_stream_mirrors_splats() {
        let scene = EVALUATED_SCENES[4].generate_scaled(0.03);
        let cfg = orbit_cfg(&scene, 3);
        let mut session = Session::default().with_stream();
        session.run(&scene, &cfg, |f| {
            assert_eq!(f.stream.len(), f.splats.len());
            assert!((0..f.splats.len()).all(|i| f.stream.get(i) == f.splats[i]));
        });
    }

    #[test]
    fn shaky_flythrough_still_repairs() {
        let scene = EVALUATED_SCENES[2].generate_scaled(0.04); // Train
        let start = scene.center + Vec3::new(0.0, 1.8, scene.view_radius);
        let path = CameraPath::flythrough(start, scene.center, 0.02, 0.01);
        let cfg = SequenceConfig::new(path, 8, 96, 72);
        let mut session = Session::default();
        let records = session
            .run_vrpipe(&scene, &cfg, &GpuConfig::default(), PipelineVariant::HetQm)
            .unwrap();
        assert_eq!(records.len(), 8);
        let rs = session.resort_stats();
        assert!(
            rs.repaired >= rs.radix_fallbacks,
            "coherent flythrough should mostly repair: {rs:?}"
        );
        for rec in &records {
            assert!(rec.retired_tile_ratio >= 0.0 && rec.retired_tile_ratio <= 1.0);
        }
    }

    #[test]
    fn indexed_sequence_matches_full_sequence_bit_exactly() {
        let scene = EVALUATED_SCENES[2].generate_scaled(0.04);
        let start = scene.center + Vec3::new(0.0, 1.8, scene.view_radius);
        let path = CameraPath::flythrough(start, scene.center, 0.02, 0.01);
        let cfg = SequenceConfig::new(path, 6, 96, 72);
        let indexed_cfg = cfg.clone().with_index();
        let mut full = Session::default();
        let mut indexed = Session::default();
        let rf = full
            .run_vrpipe(&scene, &cfg, &GpuConfig::default(), PipelineVariant::HetQm)
            .unwrap();
        let ri = indexed
            .run_vrpipe(
                &scene,
                &indexed_cfg,
                &GpuConfig::default(),
                PipelineVariant::HetQm,
            )
            .unwrap();
        for (a, b) in rf.iter().zip(&ri) {
            assert_eq!(a.stats, b.stats, "frame {}", a.index);
            assert_eq!(a.preprocess, b.preprocess, "frame {}", a.index);
        }
        // The full sequence records zero cull activity; the indexed one
        // must report per-frame decisions that add up to the session total.
        assert!(rf.iter().all(|r| r.cull == gsplat::CullStats::default()));
        let cs = indexed.cull_stats();
        assert_eq!(cs.frames, 6);
        assert_eq!(
            ri.iter().map(|r| r.cull.gaussians_touched()).sum::<u64>(),
            cs.gaussians_touched()
        );
        // Coherent flythrough: the translation bound must fire.
        assert!(
            cs.gaussians_refreshed > 0,
            "no covariance cache hits on a flythrough: {cs:?}"
        );
    }

    #[test]
    fn indexed_session_reuses_and_rebuilds_the_index() {
        let scene_a = EVALUATED_SCENES[4].generate_scaled(0.03);
        let scene_b = EVALUATED_SCENES[5].generate_scaled(0.03);
        let mut session = Session::default();
        let run_on = |session: &mut Session, scene: &Scene| {
            let cfg = orbit_cfg(scene, 2).with_index();
            session.run(scene, &cfg, |f| f.splats.len());
        };
        run_on(&mut session, &scene_a);
        let frames_a = session.cull_stats().frames;
        // A different scene must rebuild (fingerprint mismatch) and reset
        // the temporal culling state rather than reusing stale cells.
        run_on(&mut session, &scene_b);
        assert_eq!(session.cull_stats().frames, 2);
        assert_eq!(frames_a, 2);
        // Re-running the same scene keeps accumulating.
        run_on(&mut session, &scene_b);
        assert_eq!(session.cull_stats().frames, 4);
        // Explicit invalidation drops everything.
        session.invalidate_index();
        assert_eq!(session.cull_stats().frames, 0);
        // And the results still match a fresh full session.
        let cfg = orbit_cfg(&scene_b, 2);
        let counts_full = Session::default().run(&scene_b, &cfg, |f| f.splats.len());
        let counts_indexed = session.run(&scene_b, &cfg.clone().with_index(), |f| f.splats.len());
        assert_eq!(counts_full, counts_indexed);
    }

    /// Regression: the fingerprint guard must (a) provably reuse the same
    /// `Arc<SceneIndex>` allocation across runs of an unchanged scene,
    /// (b) rebuild when the scene's Gaussians are mutated in place between
    /// runs, and (c) drop everything on `invalidate_index`.
    #[test]
    fn index_reuses_arc_until_scene_mutates() {
        let mut scene = EVALUATED_SCENES[4].generate_scaled(0.03);
        let cfg = orbit_cfg(&scene, 2).with_index();
        let mut session = Session::default();
        session.run(&scene, &cfg, |f| f.splats.len());
        let first = Arc::clone(session.scene_index().expect("indexed run built an index"));
        // Unchanged scene: the next run must reuse the very allocation.
        session.run(&scene, &cfg, |f| f.splats.len());
        assert!(
            Arc::ptr_eq(&first, session.scene_index().unwrap()),
            "unchanged scene rebuilt its index"
        );
        // In-place mutation: the fingerprint changes, so the next run must
        // rebuild instead of serving stale cells/caches.
        scene.gaussians[0].mean.x += 0.5;
        let counts = session.run(&scene, &cfg, |f| f.splats.len());
        assert!(
            !Arc::ptr_eq(&first, session.scene_index().unwrap()),
            "mutated scene kept its stale index"
        );
        // And the rebuilt index yields the same result as a fresh session.
        let fresh = Session::default().run(&scene, &cfg, |f| f.splats.len());
        assert_eq!(counts, fresh);
        // Explicit invalidation drops the index outright.
        session.invalidate_index();
        assert!(session.scene_index().is_none());
        // A session attached to a SharedScene adopts its allocation.
        let shared = SharedScene::new(scene.clone());
        session.prepare_shared(&shared, &cfg);
        assert!(Arc::ptr_eq(session.scene_index().unwrap(), shared.index()));
        // prepare() on the same scene keeps the shared allocation (same
        // fingerprint), rather than rebuilding a private copy.
        session.prepare(&scene, &cfg);
        assert!(Arc::ptr_eq(session.scene_index().unwrap(), shared.index()));
    }

    #[test]
    fn indexed_stereo_sequence_is_bit_exact() {
        let scene = EVALUATED_SCENES[4].generate_scaled(0.03);
        let path = CameraPath::orbit(scene.center, scene.view_radius, 1.2, 0.05).stereo(0.065);
        let cfg = SequenceConfig::new(path, 8, 96, 72);
        let mut full = Session::default();
        let mut indexed = Session::default();
        let rf = full
            .run_vrpipe(&scene, &cfg, &GpuConfig::default(), PipelineVariant::Het)
            .unwrap();
        let ri = indexed
            .run_vrpipe(
                &scene,
                &cfg.clone().with_index(),
                &GpuConfig::default(),
                PipelineVariant::Het,
            )
            .unwrap();
        for (a, b) in rf.iter().zip(&ri) {
            assert_eq!(a.stats, b.stats, "frame {}", a.index);
        }
        // Stereo eye pairs share their view direction, so the right eye of
        // every pair is a pure translation of the left: cache hits happen
        // even though the orbit rotates between pairs.
        assert!(indexed.cull_stats().gaussians_refreshed > 0);
    }

    /// Tentpole seam: [`Session::render_stereo_pair`] must batch every
    /// eligible pair (one classification pass + one covariance replay for
    /// both eyes) and stay bit-exact with rendering each frame solo.
    #[test]
    fn stereo_pair_batches_and_matches_solo_frames() {
        let scene = EVALUATED_SCENES[4].generate_scaled(0.03);
        // Axis-aligned -z flythrough: the stereo offset lands exactly on
        // the x axis, so both eyes share a bit-identical view rotation on
        // every frame — all pairs are provably batchable.
        let start = scene.center + Vec3::new(0.0, 0.5, scene.view_radius);
        let path = CameraPath::flythrough(start, start + Vec3::new(0.0, 0.0, -8.0), 0.25, 0.01)
            .stereo(0.065);
        let cfg = SequenceConfig::new(path, 8, 96, 72).with_index();
        let gpu = GpuConfig::default();
        let mut solo = Session::default();
        let mut paired = Session::default();
        solo.prepare(&scene, &cfg);
        paired.prepare(&scene, &cfg);
        let rf: Vec<_> = (0..cfg.frames)
            .map(|i| {
                solo.render_frame_vrpipe(&scene, &cfg, i, &gpu, PipelineVariant::HetQm)
                    .unwrap()
            })
            .collect();
        for pair in 0..cfg.frames / 2 {
            let (a, b) = paired
                .render_stereo_pair(&scene, &cfg, pair, &gpu, PipelineVariant::HetQm)
                .unwrap();
            for (got, want) in [(&a, &rf[2 * pair]), (&b, &rf[2 * pair + 1])] {
                assert_eq!(got.index, want.index);
                assert_eq!(got.stats, want.stats, "frame {}", want.index);
                assert_eq!(got.preprocess, want.preprocess, "frame {}", want.index);
            }
        }
        // Every pair took the batched path: the pair batch saw all 8
        // frames, and the per-stream solo cull state saw none.
        let ps = paired.pair_batch_stats();
        assert_eq!(ps.frames, cfg.frames as u64);
        assert_eq!(paired.cull_stats().frames, 0);
        // Batching must actually share covariance work: with one
        // classification round per pair, the second eye replays the
        // first eye's cache.
        assert!(
            ps.gaussians_refreshed > 0,
            "no covariance replay across the pair: {ps:?}"
        );
        // A rotating path falls back to the exact solo path per eye.
        let orbit = SequenceConfig::new(
            CameraPath::orbit(scene.center, scene.view_radius, 1.2, 0.3),
            8,
            96,
            72,
        )
        .with_index();
        let mut fallback = Session::default();
        fallback.prepare(&scene, &orbit);
        let (a, b) = fallback
            .render_stereo_pair(&scene, &orbit, 1, &gpu, PipelineVariant::HetQm)
            .unwrap();
        assert_eq!((a.index, b.index), (2, 3));
        assert_eq!(fallback.pair_batch_stats().frames, 0);
        assert_eq!(fallback.cull_stats().frames, 2);
    }

    #[test]
    fn empty_sequence_is_empty() {
        let scene = EVALUATED_SCENES[4].generate_scaled(0.03);
        let cfg = orbit_cfg(&scene, 0);
        let mut session = Session::default();
        let records = session
            .run_vrpipe(
                &scene,
                &cfg,
                &GpuConfig::default(),
                PipelineVariant::Baseline,
            )
            .unwrap();
        assert!(records.is_empty());
        // DrawScratch reuse across separate run_vrpipe calls is also fine.
        let cfg2 = orbit_cfg(&scene, 2);
        assert_eq!(
            session
                .run_vrpipe(
                    &scene,
                    &cfg2,
                    &GpuConfig::default(),
                    PipelineVariant::Baseline
                )
                .unwrap()
                .len(),
            2
        );
        let _ = DrawScratch::default();
    }
}
