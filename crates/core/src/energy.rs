//! Draw-call energy model (paper §VI-D, Fig. 19).
//!
//! The paper estimates mobile-GPU energy by imitating HET/QM effects on a
//! Jetson AGX Orin. We model energy as static power × draw time plus
//! per-operation dynamic energies. Constants are representative
//! edge-GPU figures (order-of-magnitude per-op energies at a mobile
//! process node); what matters for Fig. 19 is the *ratio* between
//! variants, which is governed by how much of each unit's work the
//! extensions eliminate.

use gpu_sim::config::GpuConfig;
use gpu_sim::stats::PipelineStats;
use serde::{Deserialize, Serialize};

/// Per-operation dynamic energies and static power for the energy model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Static + constant-overhead power drawn for the whole draw call,
    /// in nanojoules per cycle (clock tree, idle lanes, scheduler).
    pub static_nj_per_cycle: f64,
    /// Fragment-shading energy per shaded fragment (ALU + register file).
    pub shade_frag_nj: f64,
    /// Blend energy per fragment in CROP (read-modify-write datapath).
    pub blend_frag_nj: f64,
    /// Rasterization energy per emitted quad (edge evaluation).
    pub raster_quad_nj: f64,
    /// ZROP termination/stencil test energy per quad.
    pub zrop_test_nj: f64,
    /// Termination-bit update energy (z-cache RMW).
    pub term_update_nj: f64,
    /// Energy per ROP-cache access.
    pub rop_cache_access_nj: f64,
    /// Energy per byte moved from L2.
    pub l2_byte_nj: f64,
    /// Energy per byte moved from DRAM.
    pub dram_byte_nj: f64,
    /// Warp launch/scheduling energy.
    pub warp_launch_nj: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self {
            static_nj_per_cycle: 2.0,
            shade_frag_nj: 0.9,
            blend_frag_nj: 1.1,
            raster_quad_nj: 0.8,
            zrop_test_nj: 0.15,
            term_update_nj: 0.4,
            rop_cache_access_nj: 0.3,
            l2_byte_nj: 0.03,
            dram_byte_nj: 0.15,
            warp_launch_nj: 4.0,
        }
    }
}

impl EnergyModel {
    /// Total draw-call energy in nanojoules for the given statistics.
    pub fn draw_energy_nj(&self, cfg: &GpuConfig, stats: &PipelineStats) -> f64 {
        let _ = cfg;
        let cache_accesses = stats.crop_cache.accesses() + stats.z_cache.accesses();
        let l2_bytes = (stats.crop_cache.misses
            + stats.crop_cache.writebacks
            + stats.z_cache.misses
            + stats.z_cache.writebacks) as f64
            * 128.0;
        // A fraction of L2 fills come from DRAM; approximate with the
        // fill traffic itself (framebuffers exceed the L2 for large
        // targets, but binning keeps re-reference high).
        let dram_bytes = l2_bytes * 0.3;
        self.static_nj_per_cycle * stats.total_cycles as f64
            + self.shade_frag_nj * stats.shaded_fragments as f64
            + self.blend_frag_nj * stats.crop_fragments as f64
            + self.raster_quad_nj * stats.raster_quads as f64
            + self.zrop_test_nj * stats.zrop_term_tests as f64
            + self.term_update_nj * stats.term_updates as f64
            + self.rop_cache_access_nj * cache_accesses as f64
            + self.l2_byte_nj * l2_bytes
            + self.dram_byte_nj * dram_bytes
            + self.warp_launch_nj * stats.warps_launched as f64
    }

    /// Energy efficiency of `variant` relative to `baseline`
    /// (Fig. 19's metric: baseline energy / variant energy).
    pub fn efficiency(
        &self,
        cfg: &GpuConfig,
        baseline: &PipelineStats,
        variant: &PipelineStats,
    ) -> f64 {
        let e_base = self.draw_energy_nj(cfg, baseline);
        let e_var = self.draw_energy_nj(cfg, variant);
        if e_var > 0.0 {
            e_base / e_var
        } else {
            1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_with(cycles: u64, shaded: u64, blended: u64) -> PipelineStats {
        PipelineStats {
            total_cycles: cycles,
            shaded_fragments: shaded,
            crop_fragments: blended,
            raster_quads: shaded / 4,
            warps_launched: shaded / 32,
            ..Default::default()
        }
    }

    #[test]
    fn energy_is_positive_and_monotone_in_work() {
        let m = EnergyModel::default();
        let cfg = GpuConfig::default();
        let small = m.draw_energy_nj(&cfg, &stats_with(1000, 4000, 3000));
        let large = m.draw_energy_nj(&cfg, &stats_with(2000, 8000, 6000));
        assert!(small > 0.0);
        assert!(large > small);
    }

    #[test]
    fn less_work_means_better_efficiency() {
        let m = EnergyModel::default();
        let cfg = GpuConfig::default();
        let base = stats_with(10_000, 40_000, 36_000);
        let het = stats_with(5_000, 16_000, 14_000);
        let eff = m.efficiency(&cfg, &base, &het);
        assert!(eff > 1.0, "efficiency {eff}");
    }

    #[test]
    fn efficiency_of_identical_stats_is_one() {
        let m = EnergyModel::default();
        let cfg = GpuConfig::default();
        let s = stats_with(10_000, 40_000, 36_000);
        assert!((m.efficiency(&cfg, &s, &s) - 1.0).abs() < 1e-12);
    }
}
