//! Quad merging (QM) — paper §V-C, Figs. 14 & 15.
//!
//! The **Quad Reorder Unit** (QRU) in the PROP examines the quads of a
//! flushed TC bin in order, detects pairs that cover the same quad position
//! in the screen tile, and packs each pair into *adjacent* warp slots with
//! a merge flag. In the fragment shader, the back quad of a pair fetches
//! the front quad's fragments by warp shuffle and partially blends them
//! (legal because front-to-back blending is associative, paper Eq. 2), so
//! a single merged quad reaches the ROP.

use gpu_sim::quad::Quad;

/// One warp slot as planned by the QRU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WarpSlot {
    /// An unmerged quad (index into the flushed bin).
    Single(usize),
    /// A merge pair `(front, back)` occupying two adjacent quad slots;
    /// `front` is the earlier (nearer) quad in bin order.
    Pair(usize, usize),
}

impl WarpSlot {
    /// Quad slots this entry occupies in the warp (a pair takes two).
    #[inline]
    pub fn slots(&self) -> usize {
        match self {
            WarpSlot::Single(_) => 1,
            WarpSlot::Pair(..) => 2,
        }
    }
}

/// The QRU's output for one TC-bin flush: the warp launch plan.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WarpPlan {
    /// Planned warps, each holding at most 8 quad slots.
    pub warps: Vec<Vec<WarpSlot>>,
    /// 128-bit merge bitmap: bit `i` set when bin quad `i` participates in
    /// a merge (front or back).
    pub merge_bitmap: u128,
    /// Number of merge pairs found.
    pub pairs: usize,
}

impl WarpPlan {
    /// Warps launched.
    pub fn warp_count(&self) -> usize {
        self.warps.len()
    }

    /// Occupied quad slots across all warps.
    pub fn slots_used(&self) -> usize {
        self.warps
            .iter()
            .map(|w| w.iter().map(WarpSlot::slots).sum::<usize>())
            .sum()
    }
}

/// Runs the QRU over a flushed bin (paper Fig. 14 right).
///
/// The unit scans quads from QID 0 upward, holding the last unmatched QID
/// per quad position in one of 64 registers. A second quad at an occupied
/// position forms a pair; the register is then cleared, so a third quad at
/// the same position starts a new potential pair (consecutive occurrences
/// merge, preserving per-pixel blend order under associativity).
///
/// Pairs are packed first (adjacent slots, up to 4 pairs per warp), then
/// unmerged quads fill the remaining slots using the bitmap.
///
/// # Panics
///
/// Panics when the bin exceeds the QRU's 128-entry quad buffer.
pub fn plan_warps(bin: &[Quad]) -> WarpPlan {
    let mut plan = WarpPlan::default();
    plan_warps_into(bin, &mut plan, &mut Vec::new());
    plan
}

/// [`plan_warps`] into a reusable plan, with flushed warp vectors recycled
/// through `pool` — the allocation-free frame-loop entry point.
///
/// # Panics
///
/// Panics when the bin exceeds the QRU's 128-entry quad buffer.
pub fn plan_warps_into(bin: &[Quad], plan: &mut WarpPlan, pool: &mut Vec<Vec<WarpSlot>>) {
    assert!(bin.len() <= 128, "QRU buffer holds at most 128 quads");
    for mut warp in plan.warps.drain(..) {
        warp.clear();
        pool.push(warp);
    }
    plan.merge_bitmap = 0;

    // 64 position registers: valid bit + 7-bit QID, as in the paper.
    let mut registers: [Option<usize>; 64] = [None; 64];
    // At most 64 pairs fit a 128-quad bin.
    let mut pairs = [(0usize, 0usize); 64];
    let mut n_pairs = 0usize;

    for (qid, quad) in bin.iter().enumerate() {
        let reg = quad.pos.register_index();
        match registers[reg] {
            Some(front) => {
                pairs[n_pairs] = (front, qid);
                n_pairs += 1;
                plan.merge_bitmap |= 1 << front;
                plan.merge_bitmap |= 1 << qid;
                registers[reg] = None;
            }
            None => registers[reg] = Some(qid),
        }
    }
    plan.pairs = n_pairs;

    // Pack: pairs first in detection order, then singles, 8 slots per warp.
    let mut current: Vec<WarpSlot> = pool.pop().unwrap_or_default();
    let mut used = 0usize;
    fn push_slot(
        slot: WarpSlot,
        warps: &mut Vec<Vec<WarpSlot>>,
        current: &mut Vec<WarpSlot>,
        used: &mut usize,
        pool: &mut Vec<Vec<WarpSlot>>,
    ) {
        if *used + slot.slots() > 8 {
            let next = pool.pop().unwrap_or_default();
            warps.push(std::mem::replace(current, next));
            *used = 0;
        }
        *used += slot.slots();
        current.push(slot);
    }
    for &(front, back) in &pairs[..n_pairs] {
        push_slot(
            WarpSlot::Pair(front, back),
            &mut plan.warps,
            &mut current,
            &mut used,
            pool,
        );
    }
    for single in (0..bin.len()).filter(|i| plan.merge_bitmap & (1 << i) == 0) {
        push_slot(
            WarpSlot::Single(single),
            &mut plan.warps,
            &mut current,
            &mut used,
            pool,
        );
    }
    if current.is_empty() {
        pool.push(current);
    } else {
        plan.warps.push(current);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::tiles::{QuadPos, TileId};

    fn quad(pos: (u8, u8), splat: u32) -> Quad {
        Quad {
            tile: TileId { x: 0, y: 0 },
            pos: QuadPos { x: pos.0, y: pos.1 },
            origin: (pos.0 as u32 * 2, pos.1 as u32 * 2),
            coverage: 0xF,
            splat,
        }
    }

    #[test]
    fn no_overlap_no_pairs() {
        let bin: Vec<Quad> = (0..8).map(|i| quad((i, 0), i as u32)).collect();
        let plan = plan_warps(&bin);
        assert_eq!(plan.pairs, 0);
        assert_eq!(plan.merge_bitmap, 0);
        assert_eq!(plan.warp_count(), 1);
        assert_eq!(plan.slots_used(), 8);
    }

    #[test]
    fn overlapping_quads_pair_in_order() {
        // Quads 0 and 2 at the same position, 1 elsewhere.
        let bin = vec![quad((3, 3), 0), quad((1, 1), 1), quad((3, 3), 2)];
        let plan = plan_warps(&bin);
        assert_eq!(plan.pairs, 1);
        assert_eq!(plan.merge_bitmap, 0b101);
        // Pair packed first, then the single.
        assert_eq!(plan.warps[0][0], WarpSlot::Pair(0, 2));
        assert_eq!(plan.warps[0][1], WarpSlot::Single(1));
    }

    #[test]
    fn three_at_same_position_pairs_first_two() {
        let bin = vec![quad((0, 0), 0), quad((0, 0), 1), quad((0, 0), 2)];
        let plan = plan_warps(&bin);
        assert_eq!(plan.pairs, 1);
        assert_eq!(plan.merge_bitmap, 0b011);
        assert_eq!(plan.warps[0][0], WarpSlot::Pair(0, 1));
        assert_eq!(plan.warps[0][1], WarpSlot::Single(2));
    }

    #[test]
    fn four_at_same_position_pairs_both() {
        let bin = vec![
            quad((0, 0), 0),
            quad((0, 0), 1),
            quad((0, 0), 2),
            quad((0, 0), 3),
        ];
        let plan = plan_warps(&bin);
        assert_eq!(plan.pairs, 2);
        assert_eq!(plan.warps[0][0], WarpSlot::Pair(0, 1));
        assert_eq!(plan.warps[0][1], WarpSlot::Pair(2, 3));
    }

    #[test]
    fn pairs_never_straddle_warp_boundary() {
        // 5 pairs (10 slots) + 3 singles: first warp gets 4 pairs (8 slots),
        // second warp gets the fifth pair + singles.
        let mut bin = Vec::new();
        for p in 0..5u8 {
            bin.push(quad((p, 0), 0));
            bin.push(quad((p, 0), 1));
        }
        for p in 0..3u8 {
            bin.push(quad((p, 7), 2));
        }
        let plan = plan_warps(&bin);
        assert_eq!(plan.pairs, 5);
        assert_eq!(plan.warp_count(), 2);
        assert_eq!(plan.warps[0].len(), 4);
        assert_eq!(plan.warps[0].iter().map(WarpSlot::slots).sum::<usize>(), 8);
        assert_eq!(plan.warps[1].iter().map(WarpSlot::slots).sum::<usize>(), 5);
    }

    #[test]
    fn full_bin_of_overlaps_halves_quads() {
        // 128 quads over 64 positions, two each → 64 pairs → 16 warps of
        // 4 pairs; every ROP quad halved.
        let mut bin = Vec::new();
        for i in 0..128usize {
            let p = (i % 64) as u8;
            bin.push(quad((p % 8, p / 8), i as u32));
        }
        let plan = plan_warps(&bin);
        assert_eq!(plan.pairs, 64);
        assert_eq!(plan.warp_count(), 16);
        assert_eq!(plan.merge_bitmap, u128::MAX);
    }

    #[test]
    fn reused_plan_matches_fresh_plan() {
        let mut plan = WarpPlan::default();
        let mut pool = Vec::new();
        for round in 0..4u8 {
            let bin: Vec<Quad> = (0..(32 + round as usize * 17))
                .map(|i| quad(((i % 8) as u8, ((i / 8) % 8) as u8), i as u32))
                .collect();
            plan_warps_into(&bin, &mut plan, &mut pool);
            assert_eq!(plan, plan_warps(&bin), "round {round}");
        }
    }

    #[test]
    #[should_panic(expected = "128")]
    fn oversized_bin_panics() {
        let bin: Vec<Quad> = (0..129).map(|_| quad((0, 0), 0)).collect();
        let _ = plan_warps(&bin);
    }
}
