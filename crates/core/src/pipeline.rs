//! The hardware graphics pipeline orchestrator: drives one draw call of
//! sorted splats through the unit models (paper Fig. 12) and produces both
//! the rendered image (functional correctness) and per-unit timing
//! (performance), for any [`PipelineVariant`].
//!
//! Flow per primitive (front-to-back draw order):
//!
//! ```text
//! VPO ─→ [TGC (QM)] ─→ Raster (setup/coarse/fine) ─→ TC bins
//!   TC flush ─→ [ZROP termination test (HET)] ─→ PROP [QRU (QM)]
//!     ─→ SM fragment shading (alpha prune, merge) ─→ CROP blending
//!       └─ alpha test unit (HET) ─→ ZROP termination update
//! ```
//!
//! The simulated pipeline is inherently order-dependent (bin evictions,
//! cache state, the flow-shop timer), so the draw loop itself runs
//! serially — but its pure per-primitive prologue (triangle setup, the
//! TGC `(grid, primitive)` key stream) fans out over the host threads in
//! [`GpuConfig::thread_policy`], and every per-primitive / per-flush
//! buffer lives in a reusable [`DrawScratch`], making the steady-state
//! frame loop allocation-free. Simulated results are bit-exact for every
//! `threads` setting.

use gpu_sim::binning::{BinTable, Flush, FlushReason, KeyStream};
use gpu_sim::cache::Cache;
use gpu_sim::config::GpuConfig;
use gpu_sim::quad::{Quad, ShadedQuad};
use gpu_sim::raster::{rasterize_in_tile_into, SplatSetup};
use gpu_sim::stats::{PipelineStats, Unit};
use gpu_sim::tiles::{TileGridId, TileId, Tiling};
use gpu_sim::timing::{PipelineTimer, WorkBatch};
use gsplat::blend::blend_over;
use gsplat::color::Rgba;
use gsplat::framebuffer::{ColorBuffer, DepthStencilBuffer};
use gsplat::par::Bands;
use gsplat::splat::Splat;
use gsplat::stream::{FragmentKernel, SplatStream, TileBitset};

use crate::het::{alpha_test, termination_test, termination_update};
use crate::qm::{plan_warps_into, WarpPlan, WarpSlot};
use crate::shading::{merge_pair, premultiplied_fragment, shade_quad, shade_quad_stream};
use crate::variant::PipelineVariant;

/// Result of one simulated draw call.
#[derive(Debug, Clone)]
pub struct DrawOutput {
    /// The rendered (pre-multiplied) color buffer.
    pub color: ColorBuffer,
    /// Final depth/stencil state (termination flags in the MSB).
    pub depth_stencil: DepthStencilBuffer,
    /// Work counters, cache behaviour, cycles and utilisation.
    pub stats: PipelineStats,
}

/// Why a draw call failed. Returned by the fallible
/// [`try_draw`]/[`try_draw_with_scratch`]/[`try_draw_in_place`] entry
/// points and by stream backends behind `vrpipe::serve`; the panicking
/// [`draw`] family unwraps it.
///
/// Implements [`std::error::Error`] + [`std::fmt::Display`], and
/// [`DrawError::is_transient`] classifies errors for retry logic — user
/// code can match on the variants instead of inspecting strings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DrawError {
    /// The [`GpuConfig`] failed [`GpuConfig::validate`]; the payload is
    /// the validator's description of the first violation.
    InvalidConfig(String),
    /// The caller-owned color and depth/stencil targets disagree on their
    /// dimensions (`(width, height)` of each).
    TargetMismatch {
        /// Color-buffer dimensions.
        color: (u32, u32),
        /// Depth/stencil-buffer dimensions.
        depth_stencil: (u32, u32),
    },
    /// A runtime backend fault: the stream's renderer (or an injected
    /// fault, see `vrpipe::serve::faults`) failed while producing a frame.
    /// `transient` marks faults worth retrying (momentary resource
    /// pressure, an injected transient) as opposed to deterministic ones.
    Backend {
        /// Human-readable description of the fault.
        reason: String,
        /// `true` when a retry of the same frame may succeed.
        transient: bool,
    },
}

impl DrawError {
    /// A runtime backend fault (see [`DrawError::Backend`]).
    pub fn backend(reason: impl Into<String>, transient: bool) -> Self {
        DrawError::Backend {
            reason: reason.into(),
            transient,
        }
    }

    /// `true` when retrying the failed operation may succeed, so retry
    /// loops (e.g. the serve scheduler's bounded exponential backoff) can
    /// classify errors without string inspection. Configuration and
    /// target-shape errors are deterministic — a retry would fail
    /// identically — so only transient [`DrawError::Backend`] faults
    /// qualify.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            DrawError::Backend {
                transient: true,
                ..
            }
        )
    }
}

impl std::fmt::Display for DrawError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DrawError::InvalidConfig(why) => write!(f, "invalid GPU configuration: {why}"),
            DrawError::TargetMismatch {
                color,
                depth_stencil,
            } => write!(
                f,
                "render target dimensions disagree: color {}x{} vs depth/stencil {}x{}",
                color.0, color.1, depth_stencil.0, depth_stencil.1
            ),
            DrawError::Backend { reason, transient } => write!(
                f,
                "backend fault ({}): {reason}",
                if *transient { "transient" } else { "permanent" }
            ),
        }
    }
}

impl std::error::Error for DrawError {}

/// Asset-loading failures surface at backend call sites as permanent
/// (non-transient) backend faults: a corrupt file fails identically on
/// retry, so the serve scheduler's retry machinery must not spin on it.
impl From<gsplat::asset::AssetError> for DrawError {
    fn from(e: gsplat::asset::AssetError) -> Self {
        DrawError::backend(format!("scene asset: {e}"), false)
    }
}

/// Reusable per-draw buffers: primitive setups, the TGC key stream, the
/// raster quad buffer and every per-flush staging vector. Holding one of
/// these across draws removes all steady-state allocation from the
/// simulator's frame loop.
#[derive(Debug, Default)]
pub struct DrawScratch {
    /// Per-primitive setup results (parallel prologue output).
    setups: Vec<Option<SplatSetup>>,
    /// TGC `(grid, primitive)` insertion stream.
    tgc_stream: KeyStream<TileGridId>,
    /// Fine-raster quad staging for one (primitive, tile) visit.
    quads: Vec<Quad>,
    /// Surviving quads of the TC flush being processed.
    bin: Vec<Quad>,
    /// Shaded quads of the current flush.
    shaded: Vec<ShadedQuad>,
    /// Merge replacements (front slots) of the current flush.
    replacement: Vec<Option<ShadedQuad>>,
    /// Back-quad skip marks of the current flush.
    skip: Vec<bool>,
    /// QRU output, with its warp vectors recycled through `warp_pool`.
    plan: WarpPlan,
    warp_pool: Vec<Vec<WarpSlot>>,
    /// SoA view of the splat list (rebuilt per draw, `Soa` kernel only).
    stream: SplatStream,
    /// Retired-tile bitset (HET variants): set once every pixel of a
    /// screen tile has crossed the termination threshold.
    retired: TileBitset,
    /// Per-tile count of terminated pixels, feeding `retired`.
    tile_term: Vec<u32>,
}

/// Simulates one draw call of depth-sorted splats.
///
/// # Examples
///
/// ```
/// use gpu_sim::config::GpuConfig;
/// use gsplat::{preprocess::preprocess, scene::EVALUATED_SCENES};
/// use vrpipe::{draw, PipelineVariant};
///
/// let scene = EVALUATED_SCENES[4].generate_scaled(0.04);
/// let cam = scene.default_camera();
/// let pre = preprocess(&scene, &cam);
/// let cfg = GpuConfig::default();
/// let out = draw(&pre.splats, cam.width(), cam.height(), &cfg, PipelineVariant::Baseline);
/// assert!(out.stats.total_cycles > 0);
/// ```
///
/// # Panics
///
/// Panics when the configuration fails [`GpuConfig::validate`]; use
/// [`try_draw`] to handle invalid configurations as values.
pub fn draw(
    splats: &[Splat],
    width: u32,
    height: u32,
    cfg: &GpuConfig,
    variant: PipelineVariant,
) -> DrawOutput {
    // vrlint: allow(VL01, reason = "documented # Panics wrapper; frame loops use the try_ form")
    try_draw(splats, width, height, cfg, variant).expect("draw rejected")
}

/// Fallible [`draw`]: returns [`DrawError::InvalidConfig`] instead of
/// panicking, so long-running frame loops can surface bad configurations
/// as errors.
pub fn try_draw(
    splats: &[Splat],
    width: u32,
    height: u32,
    cfg: &GpuConfig,
    variant: PipelineVariant,
) -> Result<DrawOutput, DrawError> {
    try_draw_with_scratch(
        splats,
        width,
        height,
        cfg,
        variant,
        &mut DrawScratch::default(),
    )
}

/// [`draw`] reusing caller-owned scratch buffers across draw calls.
///
/// # Panics
///
/// Panics when the configuration fails [`GpuConfig::validate`]; use
/// [`try_draw_with_scratch`] for the fallible form.
pub fn draw_with_scratch(
    splats: &[Splat],
    width: u32,
    height: u32,
    cfg: &GpuConfig,
    variant: PipelineVariant,
    scratch: &mut DrawScratch,
) -> DrawOutput {
    // vrlint: allow(VL01, reason = "documented # Panics wrapper; frame loops use the try_ form")
    try_draw_with_scratch(splats, width, height, cfg, variant, scratch).expect("draw rejected")
}

/// Fallible [`draw_with_scratch`].
pub fn try_draw_with_scratch(
    splats: &[Splat],
    width: u32,
    height: u32,
    cfg: &GpuConfig,
    variant: PipelineVariant,
    scratch: &mut DrawScratch,
) -> Result<DrawOutput, DrawError> {
    let mut color = ColorBuffer::new(width, height, cfg.pixel_format);
    let mut ds = DepthStencilBuffer::new(width, height);
    let stats = try_draw_in_place(splats, cfg, variant, &mut color, &mut ds, scratch)?;
    Ok(DrawOutput {
        color,
        depth_stencil: ds,
        stats,
    })
}

/// [`draw`] into caller-owned render targets (cleared here), reusing
/// `scratch` — the fully allocation-free frame-loop entry point.
///
/// # Panics
///
/// Panics when the configuration fails [`GpuConfig::validate`] or when the
/// color and depth/stencil dimensions disagree; use [`try_draw_in_place`]
/// for the fallible form.
pub fn draw_in_place(
    splats: &[Splat],
    cfg: &GpuConfig,
    variant: PipelineVariant,
    color: &mut ColorBuffer,
    ds: &mut DepthStencilBuffer,
    scratch: &mut DrawScratch,
) -> PipelineStats {
    // vrlint: allow(VL01, reason = "documented # Panics wrapper; frame loops use the try_ form")
    try_draw_in_place(splats, cfg, variant, color, ds, scratch).expect("draw rejected")
}

/// Fallible [`draw_in_place`]: rejects invalid configurations and
/// mismatched render targets as a [`DrawError`] before any pipeline state
/// is touched, instead of panicking mid-frame-loop.
// vrlint: hot
pub fn try_draw_in_place(
    splats: &[Splat],
    cfg: &GpuConfig,
    variant: PipelineVariant,
    color: &mut ColorBuffer,
    ds: &mut DepthStencilBuffer,
    scratch: &mut DrawScratch,
) -> Result<PipelineStats, DrawError> {
    cfg.validate().map_err(DrawError::InvalidConfig)?;
    if (color.width(), color.height()) != (ds.width(), ds.height()) {
        return Err(DrawError::TargetMismatch {
            color: (color.width(), color.height()),
            depth_stencil: (ds.width(), ds.height()),
        });
    }
    let (width, height) = (color.width(), color.height());
    color.reset(width, height, cfg.pixel_format);
    ds.reset(width, height);
    let tiling = Tiling::new(width, height, cfg.screen_tile_px, cfg.tile_grid_tiles);
    if cfg.kernel == FragmentKernel::Soa {
        scratch.stream.rebuild_from(splats);
    }
    let track_tiles = if variant.het() {
        tiling.tile_count()
    } else {
        0
    };
    scratch.retired.reset(track_tiles);
    scratch.tile_term.clear();
    scratch.tile_term.resize(track_tiles, 0);
    Ok(Pipeline {
        splats,
        cfg,
        variant,
        tiling,
        color,
        ds,
        crop_cache: Cache::new(cfg.crop_cache_bytes, cfg.cache_line_bytes, cfg.cache_ways),
        z_cache: Cache::new(cfg.z_cache_bytes, cfg.cache_line_bytes, cfg.cache_ways),
        l2: Cache::new(4 * 1024 * 1024, cfg.cache_line_bytes, 16),
        timer: PipelineTimer::new(),
        stats: PipelineStats::default(),
        pending: WorkBatch::default(),
        tc: BinTable::new(cfg.tc_bins, cfg.tc_bin_size),
        line_block: line_block(cfg),
        scratch,
    }
    .run())
}

/// Color-cache line geometry: a 128-B line covers a
/// `(128/bpp/4)`-wide × 4-tall pixel block.
fn line_block(cfg: &GpuConfig) -> (u32, u32) {
    let bpp = cfg.pixel_format.bytes_per_pixel() as u32;
    let block_h = 4u32;
    let block_w = (cfg.cache_line_bytes as u32 / (bpp * block_h)).max(1);
    (block_w, block_h)
}

/// Internal per-draw-call state.
struct Pipeline<'a> {
    splats: &'a [Splat],
    cfg: &'a GpuConfig,
    variant: PipelineVariant,
    tiling: Tiling,
    color: &'a mut ColorBuffer,
    ds: &'a mut DepthStencilBuffer,
    crop_cache: Cache,
    z_cache: Cache,
    l2: Cache,
    timer: PipelineTimer,
    stats: PipelineStats,
    /// Upstream work accumulated since the last TC flush.
    pending: WorkBatch,
    tc: BinTable<TileId, Quad>,
    /// Color-cache line geometry (pixels per line block).
    line_block: (u32, u32),
    scratch: &'a mut DrawScratch,
}

impl Pipeline<'_> {
    fn run(mut self) -> PipelineStats {
        self.precompute_setups();
        // Degenerate (singular-axes) primitives were culled at setup —
        // count them so zero-area inputs are observable, never silent.
        self.stats.degenerate_prims =
            self.scratch.setups.iter().filter(|s| s.is_none()).count() as u64;
        if self.variant.qm() {
            self.run_with_tgc();
        } else {
            self.run_direct();
        }
        // End-of-draw: drain the TC unit (subsumes the timeout flush).
        let drains = self.tc.drain();
        for flush in drains {
            self.process_tc_flush(flush);
        }
        // Push any trailing upstream work.
        if self.pending.total() > 0.0 {
            let batch = std::mem::take(&mut self.pending);
            self.timer.push(batch);
        }
        self.crop_cache.flush();
        self.z_cache.flush();

        self.stats.crop_cache = self.crop_cache.stats();
        self.stats.z_cache = self.z_cache.stats();
        let (total, busy) = self.timer.finish();
        self.stats.total_cycles = total;
        self.stats.busy_cycles = busy;
        self.stats
    }

    /// Parallel prologue: triangle setup for every primitive. Pure
    /// per-splat work fanned out over contiguous chunks; results land in
    /// primitive order, so downstream behaviour is independent of the
    /// thread count. The `Soa` kernel reads the [`SplatStream`] (identical
    /// field values → identical setups).
    fn precompute_setups(&mut self) {
        let splats = self.splats;
        let soa = self.cfg.kernel == FragmentKernel::Soa;
        let DrawScratch { setups, stream, .. } = &mut *self.scratch;
        let stream = &*stream;
        let make = |i: usize| {
            if soa {
                SplatSetup::from_stream(stream, i)
            } else {
                SplatSetup::new(&splats[i])
            }
        };
        setups.clear();
        setups.resize(splats.len(), None);
        let policy = self.cfg.thread_policy();
        if policy.workers(splats.len()) <= 1 {
            for (i, setup) in setups.iter_mut().enumerate() {
                *setup = make(i);
            }
            return;
        }
        let chunk = splats.len().div_ceil(policy.workers(splats.len()));
        let bands = Bands::new(setups, chunk);
        gsplat::par::run_indexed(splats.len().div_ceil(chunk), policy, |c| {
            let band = bands.take(c);
            for (j, setup) in band.iter_mut().enumerate() {
                *setup = make(c * chunk + j);
            }
        });
    }

    /// Baseline path: each primitive rasterizes across all its screen
    /// tiles immediately, in draw order.
    fn run_direct(&mut self) {
        for i in 0..self.splats.len() {
            self.account_vertex(i);
            let Some(setup) = self.scratch.setups[i] else {
                continue;
            };
            let Some(rect) = self.tiling.tile_rect_in_aabb(
                (setup.aabb.0.x, setup.aabb.0.y),
                (setup.aabb.1.x, setup.aabb.1.y),
            ) else {
                continue;
            };
            self.rasterize_rect(i as u32, &setup, rect);
        }
    }

    /// QM path: primitives are first gathered per tile grid by the TGC
    /// unit; a TGC flush rasterizes its primitives restricted to that grid,
    /// concentrating spatially-overlapping quads in the TC bins.
    ///
    /// The `(grid, primitive)` key stream is derived on worker threads
    /// (chunk-ordered merge), then replayed serially through the TGC bin
    /// table — flush and eviction order is bit-exact with a serial build.
    fn run_with_tgc(&mut self) {
        let mut stream = std::mem::take(&mut self.scratch.tgc_stream);
        {
            let setups = &self.scratch.setups;
            let tiling = &self.tiling;
            let g = self.cfg.tile_grid_tiles;
            stream.build(self.splats.len(), self.cfg.thread_policy(), |i, push| {
                let Some(setup) = setups[i as usize] else {
                    return;
                };
                let Some((x0, x1, y0, y1)) = tiling.tile_rect_in_aabb(
                    (setup.aabb.0.x, setup.aabb.0.y),
                    (setup.aabb.1.x, setup.aabb.1.y),
                ) else {
                    return;
                };
                // x-major grid walk: the same visit order as sorting
                // TileGridIds (lexicographic by x, then y) and deduping.
                for gx in x0 / g..=x1 / g {
                    for gy in y0 / g..=y1 / g {
                        push(TileGridId { x: gx, y: gy });
                    }
                }
            });
        }

        let mut tgc: BinTable<TileGridId, u32> =
            BinTable::new(self.cfg.tgc_bins, self.cfg.tgc_bin_size);
        // Vertex work interleaves with insertions exactly as a per-splat
        // loop would: each primitive is accounted just before its first
        // insertion (or with the next accounted primitive if it has none).
        let mut next_vertex = 0usize;
        for idx in 0..stream.pairs().len() {
            let (grid, prim) = stream.pairs()[idx];
            while next_vertex <= prim as usize {
                self.account_vertex(next_vertex);
                next_vertex += 1;
            }
            self.stats.tgc_insertions += 1;
            self.pending.add(Unit::Tgc, 1.0);
            for flush in tgc.insert(grid, prim) {
                let Flush { key, items, .. } = flush;
                self.process_tgc_flush(key, &items);
                tgc.recycle(items);
            }
        }
        while next_vertex < self.splats.len() {
            self.account_vertex(next_vertex);
            next_vertex += 1;
        }
        self.scratch.tgc_stream = stream;

        let drains = tgc.drain();
        for flush in drains {
            self.process_tgc_flush(flush.key, &flush.items);
        }
        let s = tgc.stats();
        self.stats.tgc_flushes = s.flushes;
        self.stats.tgc_evictions = s.evictions;
    }

    fn account_vertex(&mut self, _index: usize) {
        self.stats.primitives += 1;
        self.pending
            .add(Unit::Vpo, 1.0 / self.cfg.vpo_prims_per_cycle as f64);
        self.pending.add(
            Unit::Sm,
            self.cfg.vertex_shader_cycles_per_prim as f64 / self.cfg.simt_cores as f64,
        );
    }

    /// Rasterizes a TGC flush: every primitive in the bin, restricted to
    /// the screen tiles of that tile grid.
    fn process_tgc_flush(&mut self, grid: TileGridId, prims: &[u32]) {
        let g = self.cfg.tile_grid_tiles;
        for &prim in prims {
            let Some(setup) = self.scratch.setups[prim as usize] else {
                continue;
            };
            let Some((x0, x1, y0, y1)) = self.tiling.tile_rect_in_aabb(
                (setup.aabb.0.x, setup.aabb.0.y),
                (setup.aabb.1.x, setup.aabb.1.y),
            ) else {
                continue;
            };
            // Intersect the primitive's tile rect with this grid's tiles.
            let rect = (
                x0.max(grid.x * g),
                x1.min(grid.x * g + g - 1),
                y0.max(grid.y * g),
                y1.min(grid.y * g + g - 1),
            );
            if rect.0 > rect.1 || rect.2 > rect.3 {
                continue;
            }
            self.rasterize_rect(prim, &setup, rect);
        }
    }

    /// Runs setup + coarse + fine raster over the inclusive tile rectangle
    /// `(x0, x1, y0, y1)` and feeds the TC unit.
    ///
    /// Retired tiles are deliberately *not* skipped here: their quads must
    /// keep flowing into the TC bins so bin-pressure evictions — and with
    /// them every other tile's flush boundaries, ZROP test timing and
    /// blend rounding — stay identical between kernels. The fast path
    /// instead discards a retired tile's quads wholesale at flush time
    /// (see [`Pipeline::process_tc_flush`]), which is exact.
    fn rasterize_rect(&mut self, prim: u32, setup: &SplatSetup, rect: (u32, u32, u32, u32)) {
        let (x0, x1, y0, y1) = rect;
        self.pending
            .add(Unit::Raster, 1.0 / self.cfg.setup_prims_per_cycle as f64);
        let mut quads = std::mem::take(&mut self.scratch.quads);
        for ty in y0..=y1 {
            for tx in x0..=x1 {
                let tile = TileId { x: tx, y: ty };
                quads.clear();
                let coarse_tiles = rasterize_in_tile_into(
                    setup,
                    prim,
                    tile,
                    &self.tiling,
                    self.cfg.raster_tile_px,
                    &mut quads,
                );
                self.stats.coarse_tiles += coarse_tiles;
                self.pending.add(
                    Unit::Raster,
                    coarse_tiles as f64 / self.cfg.coarse_raster_tiles_per_cycle as f64
                        + quads.len() as f64 / self.cfg.fine_raster_quads_per_cycle as f64,
                );
                for &q in &quads {
                    self.stats.raster_quads += 1;
                    self.stats.raster_fragments += q.coverage_count() as u64;
                    self.tc_insert(q);
                }
            }
        }
        self.scratch.quads = quads;
    }

    fn tc_insert(&mut self, q: Quad) {
        self.stats.tc_insertions += 1;
        self.pending
            .add(Unit::Tc, 1.0 / self.cfg.tc_quads_per_cycle as f64);
        let tile = q.tile;
        for flush in self.tc.insert(tile, q) {
            self.process_tc_flush(flush);
        }
    }

    /// The heart of the pipeline: one TC-bin flush travels through ZROP
    /// (HET), PROP/QRU (QM), the SMs and CROP, producing one timing batch.
    fn process_tc_flush(&mut self, flush: Flush<TileId, Quad>) {
        let mut batch = std::mem::take(&mut self.pending);
        self.stats.tc_flushes += 1;
        if flush.reason == FlushReason::Evicted {
            self.stats.tc_evictions += 1;
        }

        // --- ZROP early-termination test (HET) ---
        let mut bin = std::mem::take(&mut self.scratch.bin);
        bin.clear();
        if self.variant.het() {
            let retired_fast_discard = self.cfg.kernel == FragmentKernel::Soa && {
                let idx = (flush.key.y * self.tiling.tiles_x() + flush.key.x) as usize;
                self.scratch.retired.get(idx)
            };
            if retired_fast_discard {
                // Tile-granularity transmittance check: every pixel of the
                // tile is terminated, so the whole flush is discarded on
                // one tile-flag read instead of per-quad stencil-line
                // tests. The surviving set (empty) is what the per-quad
                // loop would produce, so images and downstream state are
                // bit-identical; only ZROP/z-cache work disappears.
                self.stats.retired_tile_skips += 1;
                self.stats.zrop_term_discards += flush.items.len() as u64;
                self.stats.zrop_term_discarded_fragments += flush
                    .items
                    .iter()
                    .map(|q| q.coverage_count() as u64)
                    .sum::<u64>();
                batch.add(Unit::Zrop, 1.0 / self.cfg.zrop_quads_per_cycle as f64);
            } else {
                let n = flush.items.len() as f64;
                self.stats.zrop_term_tests += flush.items.len() as u64;
                batch.add(Unit::Zrop, n / self.cfg.zrop_quads_per_cycle as f64);
                for &q in &flush.items {
                    // One z-cache line read per quad (stencil MSBs).
                    self.z_cache_access(q.origin, false, &mut batch);
                    let t = termination_test(&q, self.ds);
                    if t.survives {
                        self.stats.zrop_term_discarded_fragments += t.terminated_fragments as u64;
                        bin.push(q);
                    } else {
                        self.stats.zrop_term_discards += 1;
                        self.stats.zrop_term_discarded_fragments += q.coverage_count() as u64;
                    }
                }
            }
        } else {
            bin.extend_from_slice(&flush.items);
        }
        self.tc.recycle(flush.items);
        if bin.is_empty() {
            self.timer.push(batch);
            self.scratch.bin = bin;
            return;
        }

        // --- PROP routing / quad reorder unit (QM) ---
        let mut plan = std::mem::take(&mut self.scratch.plan);
        if self.variant.qm() {
            plan_warps_into(&bin, &mut plan, &mut self.scratch.warp_pool);
        } else {
            sequential_plan_into(bin.len(), &mut plan, &mut self.scratch.warp_pool);
        }
        // Pre-shading routing (and QRU examination, which proceeds at the
        // routing rate — the scan is simple register compares pipelined
        // with dispatch).
        batch.add(
            Unit::Prop,
            bin.len() as f64 / self.cfg.prop_quads_per_cycle as f64,
        );
        self.stats.warps_launched += plan.warp_count() as u64;
        self.stats.warp_quad_slots_used += plan.slots_used() as u64;
        self.stats.merged_pairs += plan.pairs as u64;

        // --- SM fragment shading ---
        let mut warp_cycles = 0u64;
        for warp in &plan.warps {
            let has_pair = warp.iter().any(|s| matches!(s, WarpSlot::Pair(..)));
            warp_cycles += self.cfg.frag_shader_cycles_per_warp as u64
                + if has_pair {
                    self.cfg.qm_extra_cycles_per_warp as u64
                } else {
                    0
                };
        }
        batch.add(Unit::Sm, warp_cycles as f64 / self.cfg.simt_cores as f64);

        let mut shaded = std::mem::take(&mut self.scratch.shaded);
        shaded.clear();
        let soa = self.cfg.kernel == FragmentKernel::Soa;
        for q in &bin {
            let sq = if soa {
                shade_quad_stream(q, &self.scratch.stream)
            } else {
                shade_quad(q, &self.splats[q.splat as usize])
            };
            let covered = q.coverage_count() as u64;
            self.stats.shaded_fragments += covered;
            self.stats.alpha_pruned_fragments += covered - sq.alive_count() as u64;
            shaded.push(sq);
        }

        // Merge pairs: replace the front quad, skip the back quad.
        let mut replacement = std::mem::take(&mut self.scratch.replacement);
        let mut skip = std::mem::take(&mut self.scratch.skip);
        replacement.clear();
        replacement.resize(bin.len(), None);
        skip.clear();
        skip.resize(bin.len(), false);
        for warp in &plan.warps {
            for slot in warp {
                if let WarpSlot::Pair(front, back) = *slot {
                    replacement[front] = Some(merge_pair(&shaded[front], &shaded[back]));
                    skip[back] = true;
                }
            }
        }

        // --- CROP blending (+ HET alpha test unit) ---
        let mut crop_quads_here = 0u64;
        for idx in 0..bin.len() {
            if skip[idx] {
                continue;
            }
            let sq = replacement[idx].as_ref().unwrap_or(&shaded[idx]);
            if sq.is_dead() {
                self.stats.dead_quads += 1;
                continue;
            }
            crop_quads_here += 1;
            self.stats.crop_quads += 1;
            self.crop_cache_access(sq.quad.origin, &mut batch);
            for i in 0..4 {
                if sq.alive & (1 << i) == 0 {
                    continue;
                }
                let (x, y) = sq.quad.fragment_xy(i);
                if x >= self.color.width() || y >= self.color.height() {
                    continue;
                }
                self.stats.crop_fragments += 1;
                let (rgb, a) = premultiplied_fragment(sq, i);
                let dest = self.color.get(x, y);
                let prev_alpha = dest.a;
                let blended = blend_over(dest, Rgba::from_rgb(rgb, a));
                self.color.set(x, y, blended);
                if self.variant.het() && alpha_test(prev_alpha, blended.a) {
                    // Termination signal → ZROP update (read-modify-write
                    // of the stencil line through the z-cache).
                    self.stats.term_updates += 1;
                    self.z_cache_access((x, y), true, &mut batch);
                    batch.add(Unit::Zrop, 0.5);
                    termination_update(self.ds, x, y);
                    self.note_terminated_pixel(x, y);
                }
            }
        }
        batch.add(
            Unit::Crop,
            crop_quads_here as f64 / self.cfg.crop_quads_per_cycle() as f64,
        );
        // Post-shading ordering in PROP proceeds at CROP pace (PROP
        // orchestrates the color-fragment flow into CROP).
        batch.add(
            Unit::Prop,
            crop_quads_here as f64 / self.cfg.crop_quads_per_cycle() as f64,
        );
        self.timer.push(batch);

        self.scratch.bin = bin;
        self.scratch.shaded = shaded;
        self.scratch.replacement = replacement;
        self.scratch.skip = skip;
        self.scratch.plan = plan;
    }

    /// Records a newly terminated pixel in the per-tile counters and marks
    /// the tile retired once every one of its pixels has terminated.
    /// Alpha accumulation is monotone and [`alpha_test`] fires exactly at
    /// the crossing, so each pixel is counted once; the counter state —
    /// and therefore `retired_tiles` — is identical for both kernels
    /// (only the *consumption* of the bitset is `Soa`-gated).
    fn note_terminated_pixel(&mut self, x: u32, y: u32) {
        let tid = self.tiling.tile_of_pixel(x, y);
        let idx = (tid.y * self.tiling.tiles_x() + tid.x) as usize;
        self.scratch.tile_term[idx] += 1;
        let tile_px = self.tiling.tile_px();
        let w = ((tid.x + 1) * tile_px).min(self.color.width()) - tid.x * tile_px;
        let h = ((tid.y + 1) * tile_px).min(self.color.height()) - tid.y * tile_px;
        if self.scratch.tile_term[idx] == w * h {
            self.scratch.retired.set(idx);
            self.stats.retired_tiles += 1;
        }
    }

    /// One CROP-cache access for the color line(s) under a quad.
    fn crop_cache_access(&mut self, origin: (u32, u32), batch: &mut WorkBatch) {
        let (bw, bh) = self.line_block;
        let blocks_x = self.color.width().div_ceil(bw) as u64;
        let mut lines = [u64::MAX; 4];
        let mut n = 0;
        for (dx, dy) in [(0u32, 0u32), (1, 0), (0, 1), (1, 1)] {
            let x = origin.0 + dx;
            let y = origin.1 + dy;
            if x >= self.color.width() || y >= self.color.height() {
                continue;
            }
            let line = (y / bh) as u64 * blocks_x + (x / bw) as u64;
            if !lines[..n].contains(&line) {
                lines[n] = line;
                n += 1;
            }
        }
        for &line in &lines[..n] {
            if !self.crop_cache.access(line, true) {
                self.memory_fill(line, batch);
            }
        }
    }

    /// One z-cache access for the stencil line under a quad or pixel.
    fn z_cache_access(&mut self, origin: (u32, u32), write: bool, batch: &mut WorkBatch) {
        // 128-B stencil line = 16×8 pixel block at 1 B/pixel.
        let blocks_x = self.color.width().div_ceil(16) as u64;
        let line = (origin.1 / 8) as u64 * blocks_x + (origin.0 / 16) as u64;
        // Address-space tag to keep z lines distinct from color lines in L2.
        let tagged = line | 1 << 62;
        if !self.z_cache.access(tagged, write) {
            self.memory_fill(tagged, batch);
        }
    }

    /// A ROP-cache miss: fill from L2; an L2 miss goes to DRAM.
    fn memory_fill(&mut self, line: u64, batch: &mut WorkBatch) {
        let bytes = self.cfg.cache_line_bytes as f64;
        batch.add(Unit::L2, bytes / self.cfg.l2_bytes_per_cycle as f64);
        if !self.l2.access(line, false) {
            batch.add(Unit::Dram, bytes / self.cfg.dram_bytes_per_cycle as f64);
        }
    }
}

/// Baseline warp packing: quads in bin order, eight per warp, no pairs.
fn sequential_plan_into(n: usize, plan: &mut WarpPlan, pool: &mut Vec<Vec<WarpSlot>>) {
    for mut warp in plan.warps.drain(..) {
        warp.clear();
        pool.push(warp);
    }
    plan.merge_bitmap = 0;
    plan.pairs = 0;
    let mut i = 0;
    while i < n {
        let end = (i + 8).min(n);
        let mut warp = pool.pop().unwrap_or_default();
        warp.extend((i..end).map(WarpSlot::Single));
        plan.warps.push(warp);
        i = end;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsplat::math::{Vec2, Vec3};

    /// A deterministic stack of fully-overlapping circular splats.
    fn stacked_splats(n: usize, opacity: f32) -> Vec<Splat> {
        (0..n)
            .map(|i| Splat {
                center: Vec2::new(16.0, 16.0),
                depth: 1.0 + i as f32,
                conic: (0.02, 0.0, 0.02),
                axis_major: Vec2::new(14.0, 0.0),
                axis_minor: Vec2::new(0.0, 14.0),
                color: Vec3::new(0.5, 0.25, 0.75),
                opacity,
                source: i as u32,
            })
            .collect()
    }

    fn cfg() -> GpuConfig {
        GpuConfig::default()
    }

    #[test]
    fn draw_produces_nonzero_image_and_cycles() {
        let splats = stacked_splats(10, 0.5);
        let out = draw(&splats, 32, 32, &cfg(), PipelineVariant::Baseline);
        assert!(out.stats.total_cycles > 0);
        assert!(out.color.get(16, 16).a > 0.9);
        assert!(out.stats.crop_fragments > 0);
        assert_eq!(out.stats.primitives, 10);
    }

    #[test]
    fn variants_render_equivalent_images() {
        let splats = stacked_splats(30, 0.3);
        let base = draw(&splats, 32, 32, &cfg(), PipelineVariant::Baseline);
        for v in [
            PipelineVariant::Qm,
            PipelineVariant::Het,
            PipelineVariant::HetQm,
        ] {
            let out = draw(&splats, 32, 32, &cfg(), v);
            let diff = base.color.max_abs_diff(&out.color);
            // HET legitimately drops invisible contributions; tolerance is
            // sub-quantization (1/255 ≈ 0.0039).
            assert!(diff < 3.0 / 255.0, "{v}: diff {diff}");
        }
    }

    #[test]
    fn qm_without_het_is_floating_point_exact_enough() {
        let splats = stacked_splats(40, 0.2);
        let base = draw(&splats, 32, 32, &cfg(), PipelineVariant::Baseline);
        let qm = draw(&splats, 32, 32, &cfg(), PipelineVariant::Qm);
        // Associative regrouping only: differences are float rounding.
        assert!(base.color.max_abs_diff(&qm.color) < 1e-4);
    }

    #[test]
    fn het_terminates_saturated_pixels() {
        let splats = stacked_splats(50, 0.8);
        let out = draw(&splats, 32, 32, &cfg(), PipelineVariant::Het);
        assert!(out.depth_stencil.terminated_count() > 0);
        assert!(out.stats.zrop_term_discards > 0);
        assert!(out.stats.term_updates > 0);
        // HET must reduce CROP work vs baseline.
        let base = draw(&splats, 32, 32, &cfg(), PipelineVariant::Baseline);
        assert!(out.stats.crop_fragments < base.stats.crop_fragments);
        assert!(out.stats.total_cycles < base.stats.total_cycles);
    }

    #[test]
    fn qm_merges_overlapping_quads() {
        let splats = stacked_splats(40, 0.2);
        let out = draw(&splats, 32, 32, &cfg(), PipelineVariant::Qm);
        assert!(out.stats.merged_pairs > 0);
        let base = draw(&splats, 32, 32, &cfg(), PipelineVariant::Baseline);
        assert!(out.stats.crop_quads < base.stats.crop_quads);
        // A merged pair blends each pixel once with the pre-blended value,
        // so ROP fragments drop too (exactly what Fig. 18 counts).
        assert!(out.stats.crop_fragments < base.stats.crop_fragments);
    }

    #[test]
    fn baseline_never_uses_extension_hardware() {
        let splats = stacked_splats(20, 0.5);
        let out = draw(&splats, 32, 32, &cfg(), PipelineVariant::Baseline);
        assert_eq!(out.stats.zrop_term_tests, 0);
        assert_eq!(out.stats.merged_pairs, 0);
        assert_eq!(out.stats.tgc_insertions, 0);
        assert_eq!(out.stats.term_updates, 0);
        assert_eq!(out.depth_stencil.terminated_count(), 0);
    }

    #[test]
    fn fragment_conservation() {
        // Raster fragments = shaded + termination-discarded (HET off: equal).
        let splats = stacked_splats(25, 0.4);
        let out = draw(&splats, 32, 32, &cfg(), PipelineVariant::Baseline);
        assert_eq!(out.stats.raster_fragments, out.stats.shaded_fragments);
        // Blended = shaded − pruned (single tile, no edge clipping here).
        assert_eq!(
            out.stats.crop_fragments,
            out.stats.shaded_fragments - out.stats.alpha_pruned_fragments
        );
    }

    #[test]
    fn empty_draw_is_empty() {
        let out = draw(&[], 32, 32, &cfg(), PipelineVariant::HetQm);
        assert_eq!(out.stats.total_cycles, 0);
        assert_eq!(out.stats.crop_fragments, 0);
        assert_eq!(out.color.mean_alpha(), 0.0);
    }

    #[test]
    fn scratch_reuse_matches_fresh_draws() {
        let splats = stacked_splats(35, 0.4);
        let mut scratch = DrawScratch::default();
        for v in PipelineVariant::ALL {
            let fresh = draw(&splats, 32, 32, &cfg(), v);
            let reused = draw_with_scratch(&splats, 32, 32, &cfg(), v, &mut scratch);
            assert_eq!(reused.stats, fresh.stats, "{v}");
            assert_eq!(reused.color.max_abs_diff(&fresh.color), 0.0, "{v}");
            assert_eq!(reused.depth_stencil, fresh.depth_stencil, "{v}");
        }
    }

    #[test]
    fn thread_count_never_changes_simulated_results() {
        let splats = stacked_splats(40, 0.5);
        let serial = {
            let mut c = cfg();
            c.threads = 1;
            PipelineVariant::ALL.map(|v| draw(&splats, 48, 48, &c, v))
        };
        for (threads, deterministic) in [(3usize, true), (5, false), (0, true)] {
            let mut c = cfg();
            c.threads = threads;
            c.deterministic = deterministic;
            for (v, reference) in PipelineVariant::ALL.iter().zip(&serial) {
                let out = draw(&splats, 48, 48, &c, *v);
                assert_eq!(out.stats, reference.stats, "{v} threads={threads}");
                assert_eq!(out.color.max_abs_diff(&reference.color), 0.0, "{v}");
                assert_eq!(out.depth_stencil, reference.depth_stencil, "{v}");
            }
        }
    }

    /// Wide, nearly-flat splats that saturate whole tiles quickly.
    fn flat_stacked(n: usize) -> Vec<Splat> {
        let mut v = stacked_splats(n, 0.9);
        for s in &mut v {
            s.conic = (0.002, 0.0, 0.002);
            s.axis_major = Vec2::new(80.0, 0.0);
            s.axis_minor = Vec2::new(0.0, 80.0);
        }
        v
    }

    #[test]
    fn soa_kernel_images_bit_exact_all_variants() {
        let splats = flat_stacked(60);
        for v in PipelineVariant::ALL {
            let scalar = draw(&splats, 32, 32, &cfg(), v);
            let soa_cfg = GpuConfig {
                kernel: gsplat::stream::FragmentKernel::Soa,
                ..cfg()
            };
            let soa = draw(&splats, 32, 32, &soa_cfg, v);
            assert_eq!(
                soa.color.max_abs_diff(&scalar.color),
                0.0,
                "{v}: image diverged between kernels"
            );
            assert_eq!(soa.depth_stencil, scalar.depth_stencil, "{v}");
            if !v.het() {
                // Without HET there is no retirement fast path: the SoA
                // kernel is a pure re-layout and stats match exactly.
                assert_eq!(soa.stats, scalar.stats, "{v}");
            } else {
                // With HET the fast path removes only ZROP test work and
                // its z-cache traffic; everything else — including the
                // per-surviving-quad CROP-cache behaviour — matches
                // exactly.
                let mut masked = soa.stats.clone();
                masked.retired_tile_skips = 0;
                masked.zrop_term_tests = scalar.stats.zrop_term_tests;
                masked.z_cache = scalar.stats.z_cache;
                masked.total_cycles = scalar.stats.total_cycles;
                masked.busy_cycles = scalar.stats.busy_cycles;
                assert_eq!(masked, scalar.stats, "{v}");
                assert!(soa.stats.total_cycles <= scalar.stats.total_cycles, "{v}");
            }
        }
    }

    #[test]
    fn soa_het_retires_tiles_and_discards_flushes_wholesale() {
        let splats = flat_stacked(60);
        let soa_cfg = GpuConfig {
            kernel: gsplat::stream::FragmentKernel::Soa,
            ..cfg()
        };
        let scalar = draw(&splats, 32, 32, &cfg(), PipelineVariant::Het);
        let soa = draw(&splats, 32, 32, &soa_cfg, PipelineVariant::Het);
        assert!(scalar.stats.retired_tiles > 0, "tiles must saturate");
        assert_eq!(scalar.stats.retired_tile_skips, 0, "oracle never skips");
        assert!(soa.stats.retired_tile_skips > 0, "fast path must engage");
        // The quad flow is identical; only the ZROP testing work shrinks.
        assert_eq!(soa.stats.raster_quads, scalar.stats.raster_quads);
        assert_eq!(soa.stats.tc_flushes, scalar.stats.tc_flushes);
        assert!(soa.stats.zrop_term_tests < scalar.stats.zrop_term_tests);
        assert_eq!(
            soa.stats.zrop_term_discards,
            scalar.stats.zrop_term_discards
        );
        assert!(soa.stats.z_cache.accesses() < scalar.stats.z_cache.accesses());
        assert!(soa.stats.total_cycles <= scalar.stats.total_cycles);
        assert_eq!(soa.color.max_abs_diff(&scalar.color), 0.0);
        assert_eq!(soa.depth_stencil, scalar.depth_stencil);
    }

    #[test]
    fn soa_kernel_is_thread_count_invariant() {
        let splats = flat_stacked(40);
        let mut serial_cfg = cfg();
        serial_cfg.threads = 1;
        serial_cfg.kernel = gsplat::stream::FragmentKernel::Soa;
        let reference = draw(&splats, 48, 48, &serial_cfg, PipelineVariant::HetQm);
        for (threads, deterministic) in [(3usize, true), (5, false), (0, true)] {
            let mut c = serial_cfg.clone();
            c.threads = threads;
            c.deterministic = deterministic;
            let out = draw(&splats, 48, 48, &c, PipelineVariant::HetQm);
            assert_eq!(out.stats, reference.stats, "threads={threads}");
            assert_eq!(out.color.max_abs_diff(&reference.color), 0.0);
            assert_eq!(out.depth_stencil, reference.depth_stencil);
        }
    }

    #[test]
    fn try_draw_rejects_invalid_config_without_panicking() {
        let splats = stacked_splats(5, 0.5);
        let bad = GpuConfig {
            tc_bins: 0,
            ..cfg()
        };
        let err = try_draw(&splats, 32, 32, &bad, PipelineVariant::Baseline).unwrap_err();
        assert!(matches!(err, DrawError::InvalidConfig(_)), "{err}");
        assert!(err.to_string().contains("TC unit"), "{err}");
        let err2 = try_draw_with_scratch(
            &splats,
            32,
            32,
            &bad,
            PipelineVariant::Het,
            &mut DrawScratch::default(),
        )
        .unwrap_err();
        assert_eq!(err, err2);
    }

    /// The retry classifier: only transient backend faults are worth
    /// retrying — config and target-shape errors are deterministic.
    #[test]
    fn draw_error_transience_classifier() {
        assert!(!DrawError::InvalidConfig("x".into()).is_transient());
        assert!(!DrawError::TargetMismatch {
            color: (1, 1),
            depth_stencil: (2, 2)
        }
        .is_transient());
        assert!(DrawError::backend("blip", true).is_transient());
        assert!(!DrawError::backend("hard fault", false).is_transient());
        // Display carries the classification for logs.
        assert!(DrawError::backend("blip", true)
            .to_string()
            .contains("transient"));
        assert!(DrawError::backend("hard fault", false)
            .to_string()
            .contains("permanent"));
        // std::error::Error is implemented (satisfies `?`-style callers).
        let e: Box<dyn std::error::Error> = Box::new(DrawError::backend("blip", true));
        assert!(e.to_string().contains("blip"));
    }

    #[test]
    fn try_draw_in_place_rejects_mismatched_targets() {
        let splats = stacked_splats(5, 0.5);
        let mut color = ColorBuffer::new(32, 32, cfg().pixel_format);
        let mut ds = DepthStencilBuffer::new(32, 16);
        let err = try_draw_in_place(
            &splats,
            &cfg(),
            PipelineVariant::Baseline,
            &mut color,
            &mut ds,
            &mut DrawScratch::default(),
        )
        .unwrap_err();
        assert_eq!(
            err,
            DrawError::TargetMismatch {
                color: (32, 32),
                depth_stencil: (32, 16)
            }
        );
        assert!(err.to_string().contains("32x32"));
    }

    #[test]
    fn try_draw_matches_draw_on_valid_input() {
        let splats = stacked_splats(12, 0.5);
        let a = draw(&splats, 32, 32, &cfg(), PipelineVariant::HetQm);
        let b = try_draw(&splats, 32, 32, &cfg(), PipelineVariant::HetQm).unwrap();
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.color.max_abs_diff(&b.color), 0.0);
    }

    #[test]
    fn degenerate_primitives_are_counted_not_dropped_silently() {
        let mut splats = stacked_splats(6, 0.5);
        splats[2].axis_minor = gsplat::math::Vec2::ZERO; // singular OBB
        splats[4].axis_major = gsplat::math::Vec2::ZERO;
        for v in PipelineVariant::ALL {
            let out = draw(&splats, 32, 32, &cfg(), v);
            assert_eq!(out.stats.degenerate_prims, 2, "{v}");
            assert_eq!(out.stats.primitives, 6, "{v}");
            assert!(out.color.get(16, 16).a > 0.0, "{v}: healthy splats lost");
        }
    }

    #[test]
    fn draw_in_place_reuses_targets() {
        let splats = stacked_splats(20, 0.6);
        let mut color = ColorBuffer::new(32, 32, cfg().pixel_format);
        let mut ds = DepthStencilBuffer::new(32, 32);
        let mut scratch = DrawScratch::default();
        let fresh = draw(&splats, 32, 32, &cfg(), PipelineVariant::HetQm);
        for _ in 0..3 {
            let stats = draw_in_place(
                &splats,
                &cfg(),
                PipelineVariant::HetQm,
                &mut color,
                &mut ds,
                &mut scratch,
            );
            assert_eq!(stats, fresh.stats);
            assert_eq!(color.max_abs_diff(&fresh.color), 0.0);
            assert_eq!(ds, fresh.depth_stencil);
        }
    }
}
