//! Deterministic fault injection for the serve scheduler's chaos suite.
//!
//! A [`FaultPlan`] is a *seeded, per-stream schedule* of faults; each
//! stream's slice of the plan becomes a [`FaultInjector`] attached to its
//! [`StreamSpec`](crate::serve::StreamSpec). The injector sits at the
//! **backend seam**: the frame task consults it once per render attempt,
//! *before* invoking the real backend, so an injected fault never mutates
//! the stream's session state — which is what lets the chaos tests prove
//! that a fault on stream A cannot perturb stream B's bits (nothing
//! outside A's own state machine is ever touched).
//!
//! The four fault kinds map onto the failure modes a long-lived server
//! must survive:
//!
//! * [`FaultKind::Error`] — a *persistent* backend error: every attempt
//!   (including all retries) fails, so the stream exhausts its
//!   [`RetryPolicy`](crate::serve::RetryPolicy) and is marked `Failed`
//!   with the full retry count.
//! * [`FaultKind::Transient`]`(n)` — the first `n` attempts fail, then
//!   the real render succeeds: recovered iff `n <= max_retries`.
//! * [`FaultKind::Stall`]`(ms)` — the frame sleeps `ms` before rendering:
//!   watchdog-eviction territory when `ms` exceeds the stream's stall
//!   budget.
//! * [`FaultKind::Panic`] — the backend panics; caught at the task
//!   boundary and reported as a per-stream fault (the pool survives).
//! * [`FaultKind::Load`]`(ms)` — sustained work inflation: the frame
//!   sleeps `ms` *scaled by the rung's render-cost factor* before every
//!   attempt, modelling a backend that is genuinely `ms` slower at full
//!   quality. Unlike `Stall` it fires on every attempt, and degrading to a
//!   cheaper quality-ladder rung proportionally shrinks the injected
//!   latency — the seam the brownout chaos tests drive.
//!
//! Everything is deterministic: an injector is a pure function of
//! `(frame, attempt)`, and [`FaultPlan::seeded`] derives its schedule
//! from a seed with a SplitMix64 stream — the same seed always yields the
//! same chaos, so a failing chaos run is replayable bit for bit.

use std::time::Duration;

use crate::pipeline::DrawError;

/// One injectable fault kind (see the module docs for semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Persistent backend error: every attempt of the frame fails with a
    /// transient-classified [`DrawError::Backend`], so retry logic runs
    /// to exhaustion before the stream is marked failed.
    Error,
    /// The backend panics on the frame's first attempt.
    Panic,
    /// The frame sleeps this many milliseconds before rendering normally.
    Stall(u64),
    /// The first `n` attempts fail with a transient error, then the real
    /// render runs — recovered by `n` retries.
    Transient(u32),
    /// Sustained overload: every attempt of the frame sleeps `ms`
    /// milliseconds *at full quality*, scaled down by the cost factor of
    /// the quality-ladder rung the frame renders at (see
    /// [`FaultInjector::intercept_scaled`]).
    Load(u64),
}

/// What the frame task must do for one `(frame, attempt)`, resolved by
/// [`FaultInjector::intercept`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultAction {
    /// Return this error instead of rendering.
    Fail(DrawError),
    /// Panic with this message (caught at the task boundary).
    Panic(String),
    /// Sleep this long, then render normally.
    Sleep(Duration),
}

/// One planned fault: which stream, which frame, what kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedFault {
    /// Stream index the fault targets (registration order).
    pub stream: usize,
    /// Frame index the fault fires on.
    pub frame: usize,
    /// The fault kind.
    pub kind: FaultKind,
}

/// A deterministic per-stream fault schedule. Build one explicitly with
/// [`FaultPlan::new`] + [`FaultPlan::with_fault`], or derive a random —
/// but fully seed-determined — schedule with [`FaultPlan::seeded`]; then
/// hand each stream its slice via [`FaultPlan::injector`].
///
/// # Examples
///
/// ```
/// use vrpipe::serve::faults::{FaultKind, FaultPlan};
/// let plan = FaultPlan::new()
///     .with_fault(0, 2, FaultKind::Transient(1))
///     .with_fault(3, 1, FaultKind::Panic);
/// assert!(plan.injector(0).intercept(2, 0).is_some());
/// assert!(plan.injector(0).intercept(2, 1).is_none()); // recovered
/// assert!(plan.injector(1).intercept(2, 0).is_none()); // other streams untouched
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<PlannedFault>,
}

/// SplitMix64 step — the repo's standard seeded stream.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// An empty plan (no faults anywhere).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one fault to the schedule.
    pub fn with_fault(mut self, stream: usize, frame: usize, kind: FaultKind) -> Self {
        self.faults.push(PlannedFault {
            stream,
            frame,
            kind,
        });
        self
    }

    /// A seed-determined random schedule over `streams` streams of
    /// `frames` frames each: roughly half the streams get one fault at a
    /// random frame, with the kind (and stall length / transient depth)
    /// drawn from the same seeded stream. Identical seeds yield identical
    /// plans — chaos runs are replayable.
    pub fn seeded(seed: u64, streams: usize, frames: usize) -> Self {
        let mut plan = Self::new();
        if frames == 0 {
            return plan;
        }
        let mut state = seed | 1;
        for stream in 0..streams {
            let draw = splitmix(&mut state);
            if draw & 1 == 0 {
                continue; // this stream stays healthy
            }
            let frame = (splitmix(&mut state) % frames as u64) as usize;
            let kind = match splitmix(&mut state) % 4 {
                0 => FaultKind::Error,
                1 => FaultKind::Panic,
                2 => FaultKind::Stall(20 + (splitmix(&mut state) % 40)),
                _ => FaultKind::Transient(1 + (splitmix(&mut state) % 3) as u32),
            };
            plan = plan.with_fault(stream, frame, kind);
        }
        plan
    }

    /// Every planned fault, in insertion order.
    pub fn faults(&self) -> &[PlannedFault] {
        &self.faults
    }

    /// The planned faults targeting `stream`.
    pub fn faults_for(&self, stream: usize) -> impl Iterator<Item = &PlannedFault> {
        self.faults.iter().filter(move |f| f.stream == stream)
    }

    /// The injector carrying `stream`'s slice of the plan.
    pub fn injector(&self, stream: usize) -> FaultInjector {
        FaultInjector {
            schedule: self.faults_for(stream).map(|f| (f.frame, f.kind)).collect(),
        }
    }
}

/// One stream's fault schedule, consulted by the frame task once per
/// render attempt. Stateless — [`FaultInjector::intercept`] is a pure
/// function of `(frame, attempt)`, so a rewound rerun replays exactly the
/// same faults (deterministic chaos, deterministic recovery).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultInjector {
    /// `(frame, kind)` pairs, first match wins.
    schedule: Vec<(usize, FaultKind)>,
}

impl FaultInjector {
    /// An injector that never fires (the default for healthy streams).
    pub fn none() -> Self {
        Self::default()
    }

    /// An injector with a single fault at `frame`.
    pub fn at(frame: usize, kind: FaultKind) -> Self {
        Self {
            schedule: vec![(frame, kind)],
        }
    }

    /// `true` when no fault is scheduled.
    pub fn is_empty(&self) -> bool {
        self.schedule.is_empty()
    }

    /// What attempt `attempt` of frame `frame` must do instead of (or
    /// before) the real render; `None` = render normally. Equivalent to
    /// [`Self::intercept_scaled`] at full-quality cost (scale 1).
    pub fn intercept(&self, frame: usize, attempt: u32) -> Option<FaultAction> {
        self.intercept_scaled(frame, attempt, 1.0)
    }

    /// [`Self::intercept`] with a render-cost scale in `(0, 1]`: a
    /// [`FaultKind::Load`] sleep is multiplied by `cost_scale`, so a frame
    /// rendered at a cheaper quality-ladder rung genuinely absorbs less of
    /// the injected overload. All other fault kinds ignore the scale.
    /// Still a pure function of its arguments — seeded chaos runs replay
    /// bit for bit.
    pub fn intercept_scaled(
        &self,
        frame: usize,
        attempt: u32,
        cost_scale: f64,
    ) -> Option<FaultAction> {
        let (_, kind) = self.schedule.iter().find(|(f, _)| *f == frame)?;
        match *kind {
            FaultKind::Load(ms) => {
                let scaled = (ms as f64 * cost_scale.clamp(0.0, 1.0)).round() as u64;
                Some(FaultAction::Sleep(Duration::from_millis(scaled)))
            }
            FaultKind::Error => Some(FaultAction::Fail(DrawError::backend(
                format!("injected persistent error at frame {frame} (attempt {attempt})"),
                true,
            ))),
            FaultKind::Panic if attempt == 0 => Some(FaultAction::Panic(format!(
                "injected panic at frame {frame} (expected under fault injection)"
            ))),
            FaultKind::Panic => None,
            FaultKind::Stall(ms) if attempt == 0 => {
                Some(FaultAction::Sleep(Duration::from_millis(ms)))
            }
            FaultKind::Stall(_) => None,
            FaultKind::Transient(n) if attempt < n => Some(FaultAction::Fail(DrawError::backend(
                format!("injected transient fault at frame {frame} (attempt {attempt} of {n})"),
                true,
            ))),
            FaultKind::Transient(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_deterministic_and_bounded() {
        let a = FaultPlan::seeded(0xC0FFEE, 8, 6);
        let b = FaultPlan::seeded(0xC0FFEE, 8, 6);
        assert_eq!(a, b, "same seed must yield the same plan");
        let c = FaultPlan::seeded(0xBEEF, 8, 6);
        assert_ne!(a, c, "different seeds should differ (overwhelmingly)");
        for f in a.faults() {
            assert!(f.stream < 8);
            assert!(f.frame < 6);
        }
        assert!(FaultPlan::seeded(1, 4, 0).faults().is_empty());
    }

    #[test]
    fn transient_faults_clear_after_n_attempts() {
        let inj = FaultInjector::at(3, FaultKind::Transient(2));
        assert!(matches!(inj.intercept(3, 0), Some(FaultAction::Fail(e)) if e.is_transient()));
        assert!(matches!(inj.intercept(3, 1), Some(FaultAction::Fail(_))));
        assert_eq!(inj.intercept(3, 2), None);
        assert_eq!(inj.intercept(2, 0), None, "other frames unaffected");
    }

    #[test]
    fn persistent_errors_never_clear() {
        let inj = FaultInjector::at(1, FaultKind::Error);
        for attempt in 0..16 {
            assert!(
                matches!(inj.intercept(1, attempt), Some(FaultAction::Fail(_))),
                "attempt {attempt}"
            );
        }
    }

    #[test]
    fn panic_and_stall_fire_once() {
        let p = FaultInjector::at(0, FaultKind::Panic);
        assert!(matches!(p.intercept(0, 0), Some(FaultAction::Panic(_))));
        assert_eq!(p.intercept(0, 1), None);
        let s = FaultInjector::at(2, FaultKind::Stall(30));
        assert_eq!(
            s.intercept(2, 0),
            Some(FaultAction::Sleep(Duration::from_millis(30)))
        );
        assert_eq!(s.intercept(2, 1), None);
    }

    #[test]
    fn load_fires_every_attempt_and_scales_with_rung_cost() {
        let inj = FaultInjector::at(1, FaultKind::Load(100));
        for attempt in 0..4 {
            assert_eq!(
                inj.intercept(1, attempt),
                Some(FaultAction::Sleep(Duration::from_millis(100))),
                "load is sustained across attempts (attempt {attempt})"
            );
        }
        assert_eq!(
            inj.intercept_scaled(1, 0, 0.25),
            Some(FaultAction::Sleep(Duration::from_millis(25))),
            "quarter-cost rung absorbs a quarter of the overload"
        );
        assert_eq!(
            inj.intercept_scaled(1, 0, 1.0),
            inj.intercept(1, 0),
            "intercept() is the scale-1 case"
        );
        // Out-of-range scales clamp instead of amplifying.
        assert_eq!(
            inj.intercept_scaled(1, 0, 7.0),
            Some(FaultAction::Sleep(Duration::from_millis(100)))
        );
        assert_eq!(inj.intercept(0, 0), None, "other frames unaffected");
    }

    #[test]
    fn stall_ignores_cost_scale() {
        let inj = FaultInjector::at(2, FaultKind::Stall(40));
        assert_eq!(
            inj.intercept_scaled(2, 0, 0.25),
            Some(FaultAction::Sleep(Duration::from_millis(40)))
        );
    }
}
