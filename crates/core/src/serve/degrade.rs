//! The deterministic quality ladder: graceful degradation for overloaded
//! streams.
//!
//! PR 6's serve layer answers overload with two blunt tools — drop the
//! frame or evict the stream. This module adds the middle path: a
//! [`QualityLadder`] of derived render configurations ("rungs") that trade
//! *quality* for *latency* in provable, replayable steps, so a load spike
//! degrades what a viewer sees before it degrades whether they see
//! anything at all.
//!
//! A [`QualityRung`] derives a [`SequenceConfig`] from the stream's base
//! configuration along three axes:
//!
//! * **resolution** — `width`/`height` halved per [`QualityRung::res_shift`]
//!   step (1 → ½ → ¼ …), the dominant cost lever;
//! * **SH degree** — [`QualityRung::max_sh_degree`] caps view-dependent
//!   color evaluation (`preprocess` clamps bit-exactly to a truncated
//!   scene, see [`gsplat::sh::ShColor::evaluate_clamped`]);
//! * **kernel** — an optional [`FragmentKernel`] override for the frame's
//!   simulated fragment stage.
//!
//! The contract that makes degradation *deterministic* rather than lossy:
//! a rung is a complete render configuration, and frame `i` rendered at
//! rung `r` is **bit-exact** with frame `i` of a solo session configured
//! at rung `r` from the start. That holds because frame bits are a pure
//! function of `(scene, camera, gpu, variant)` — the camera is derived
//! from `(cfg, i)` alone, and the session's temporal machinery
//! (warm-started sort, covariance replay) is bit-exact regardless of what
//! was rendered before (DESIGN.md §12). The scheduler only switches rungs
//! *between* dispatches, never mid-frame, so every produced frame has
//! exactly one rung, recorded in
//! [`StreamReport::rungs`](crate::serve::StreamReport::rungs).
//!
//! Stepping is governed by hysteresis ([`QualityLadder::down_after`]
//! consecutive deadline misses step down, [`QualityLadder::up_after`]
//! consecutive on-time frames step up) plus the server-level brownout
//! detector ([`Server::with_brownout`](crate::serve::Server::with_brownout)),
//! which sheds aggregate lateness by stepping down streams in priority
//! order before the watchdog has to evict anyone.

use gsplat::sh::MAX_SH_DEGREE;
use gsplat::stream::FragmentKernel;

use crate::sequence::SequenceConfig;

/// One rung of the quality ladder: a recipe for deriving a cheaper (or
/// the full-quality) render configuration from a stream's base
/// [`SequenceConfig`].
///
/// # Examples
///
/// ```
/// use vrpipe::serve::degrade::QualityRung;
/// let full = QualityRung::full();
/// assert_eq!(full.res_shift, 0);
/// let quarter = QualityRung::new(2, 1);
/// assert_eq!(quarter.res_shift, 2);
/// assert_eq!(quarter.max_sh_degree, 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QualityRung {
    /// Binary resolution shift: derived `width = max(base >> shift, 1)`,
    /// same for height. 0 = full resolution, 1 = half, 2 = quarter.
    pub res_shift: u8,
    /// SH evaluation degree cap for this rung
    /// ([`SequenceConfig::max_sh_degree`]).
    pub max_sh_degree: u8,
    /// Optional fragment-kernel override for frames rendered at this rung
    /// (`None` keeps the stream's configured kernel). Kernels are
    /// bit-exact with each other, so this axis trades simulated cost only.
    pub kernel: Option<FragmentKernel>,
}

impl QualityRung {
    /// The full-quality rung: no resolution shift, no SH clamp, no kernel
    /// override. Every ladder's rung 0.
    pub const fn full() -> Self {
        Self {
            res_shift: 0,
            max_sh_degree: MAX_SH_DEGREE,
            kernel: None,
        }
    }

    /// A degraded rung: halve resolution `res_shift` times and cap SH
    /// evaluation at `max_sh_degree`.
    pub const fn new(res_shift: u8, max_sh_degree: u8) -> Self {
        Self {
            res_shift,
            max_sh_degree,
            kernel: None,
        }
    }

    /// The same rung with a fragment-kernel override.
    #[must_use]
    pub const fn with_kernel(mut self, kernel: FragmentKernel) -> Self {
        self.kernel = Some(kernel);
        self
    }

    /// Derives the complete render configuration for this rung from a
    /// stream's base configuration, tagging it with `rung` so every frame
    /// record carries its provenance. Deriving with [`QualityRung::full`]
    /// at rung 0 reproduces `base` exactly.
    pub fn derive(&self, base: &SequenceConfig, rung: u8) -> SequenceConfig {
        let mut cfg = base.clone();
        cfg.width = (base.width >> self.res_shift.min(31)).max(1);
        cfg.height = (base.height >> self.res_shift.min(31)).max(1);
        cfg.max_sh_degree = base.max_sh_degree.min(self.max_sh_degree);
        cfg.rung = rung;
        cfg
    }

    /// The rung's render-cost factor relative to the base configuration:
    /// the derived-to-base pixel ratio, in `(0, 1]`. This is what scales a
    /// [`FaultKind::Load`](crate::serve::faults::FaultKind::Load)
    /// injection — degrading genuinely sheds that fraction of the work.
    pub fn cost_scale(&self, base: &SequenceConfig) -> f64 {
        let base_px = (base.width.max(1) as f64) * (base.height.max(1) as f64);
        let d = self.derive(base, 0);
        let rung_px = (d.width as f64) * (d.height as f64);
        (rung_px / base_px).clamp(0.0, 1.0)
    }
}

impl Default for QualityRung {
    fn default() -> Self {
        Self::full()
    }
}

/// An ordered list of [`QualityRung`]s (rung 0 = full quality, ascending
/// = cheaper) plus the hysteresis constants that govern stepping.
///
/// # Examples
///
/// ```
/// use vrpipe::serve::degrade::{QualityLadder, QualityRung};
/// let ladder = QualityLadder::standard();
/// assert_eq!(ladder.len(), 3);
/// assert_eq!(ladder.rungs()[0], QualityRung::full());
/// let custom = QualityLadder::new()
///     .with_rung(QualityRung::new(1, 2))
///     .with_hysteresis(2, 4);
/// assert_eq!(custom.len(), 2);
/// assert_eq!(custom.down_after(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QualityLadder {
    rungs: Vec<QualityRung>,
    down_after: u32,
    up_after: u32,
}

impl QualityLadder {
    /// The trivial ladder: only the full-quality rung, i.e. no
    /// degradation headroom. Default hysteresis: 2 consecutive misses
    /// step down, 3 consecutive on-time frames step up.
    pub fn new() -> Self {
        Self {
            rungs: vec![QualityRung::full()],
            down_after: 2,
            up_after: 3,
        }
    }

    /// The canonical three-rung ladder the paper-style serving experiments
    /// use: full quality, half resolution at SH ≤ 2, quarter resolution at
    /// SH ≤ 1.
    pub fn standard() -> Self {
        Self::new()
            .with_rung(QualityRung::new(1, 2))
            .with_rung(QualityRung::new(2, 1))
    }

    /// Appends a (typically cheaper) rung below the current bottom.
    #[must_use]
    pub fn with_rung(mut self, rung: QualityRung) -> Self {
        self.rungs.push(rung);
        self
    }

    /// Sets the hysteresis constants: `down_after` consecutive deadline
    /// misses step down one rung, `up_after` consecutive on-time frames
    /// step up one rung. Both are clamped to at least 1.
    #[must_use]
    pub fn with_hysteresis(mut self, down_after: u32, up_after: u32) -> Self {
        self.down_after = down_after.max(1);
        self.up_after = up_after.max(1);
        self
    }

    /// The rungs, full quality first.
    pub fn rungs(&self) -> &[QualityRung] {
        &self.rungs
    }

    /// Number of rungs (always ≥ 1).
    pub fn len(&self) -> usize {
        self.rungs.len()
    }

    /// `true` when the ladder has no degradation headroom (one rung).
    pub fn is_empty(&self) -> bool {
        self.rungs.len() <= 1
    }

    /// Consecutive deadline misses required to step down.
    pub fn down_after(&self) -> u32 {
        self.down_after
    }

    /// Consecutive on-time frames required to step up.
    pub fn up_after(&self) -> u32 {
        self.up_after
    }

    /// Derives the per-rung render configurations for `base`, in rung
    /// order — what the scheduler dispatches from.
    pub fn derive_all(&self, base: &SequenceConfig) -> Vec<SequenceConfig> {
        self.rungs
            .iter()
            .enumerate()
            .map(|(i, r)| r.derive(base, i as u8))
            .collect()
    }

    /// The per-rung render-cost factors for `base` (see
    /// [`QualityRung::cost_scale`]).
    pub fn cost_scales(&self, base: &SequenceConfig) -> Vec<f64> {
        self.rungs.iter().map(|r| r.cost_scale(base)).collect()
    }

    /// The per-rung kernel overrides, in rung order.
    pub fn kernels(&self) -> Vec<Option<FragmentKernel>> {
        self.rungs.iter().map(|r| r.kernel).collect()
    }
}

impl Default for QualityLadder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsplat::camera::CameraPath;
    use gsplat::math::Vec3;

    fn base_cfg() -> SequenceConfig {
        SequenceConfig::new(CameraPath::orbit(Vec3::ZERO, 4.0, 1.5, 0.25), 8, 64, 48)
    }

    #[test]
    fn rung_zero_derivation_is_identity_except_tag() {
        let base = base_cfg();
        let derived = QualityRung::full().derive(&base, 0);
        assert_eq!(derived, base);
    }

    #[test]
    fn derivation_halves_resolution_and_clamps_sh() {
        let base = base_cfg();
        let d = QualityRung::new(1, 2).derive(&base, 1);
        assert_eq!((d.width, d.height), (32, 24));
        assert_eq!(d.max_sh_degree, 2);
        assert_eq!(d.rung, 1);
        let q = QualityRung::new(2, 0).derive(&base, 2);
        assert_eq!((q.width, q.height), (16, 12));
        assert_eq!(q.max_sh_degree, 0);
        // Extreme shifts floor at one pixel instead of vanishing.
        let tiny = QualityRung::new(40, 3).derive(&base, 3);
        assert_eq!((tiny.width, tiny.height), (1, 1));
    }

    #[test]
    fn cost_scale_tracks_pixel_ratio() {
        let base = base_cfg();
        assert_eq!(QualityRung::full().cost_scale(&base), 1.0);
        assert_eq!(QualityRung::new(1, 3).cost_scale(&base), 0.25);
        assert_eq!(QualityRung::new(2, 3).cost_scale(&base), 0.0625);
    }

    #[test]
    fn ladder_builders_and_hysteresis_clamp() {
        let ladder = QualityLadder::standard().with_hysteresis(0, 0);
        assert_eq!(ladder.down_after(), 1);
        assert_eq!(ladder.up_after(), 1);
        assert_eq!(ladder.len(), 3);
        assert!(!ladder.is_empty());
        assert!(QualityLadder::new().is_empty());
        let cfgs = ladder.derive_all(&base_cfg());
        assert_eq!(cfgs.len(), 3);
        assert_eq!(cfgs[0].rung, 0);
        assert_eq!(cfgs[2].rung, 2);
        assert_eq!(cfgs[2].width, 16);
        let scales = ladder.cost_scales(&base_cfg());
        assert_eq!(scales, vec![1.0, 0.25, 0.0625]);
    }

    #[test]
    fn kernel_override_rides_the_rung() {
        let rung = QualityRung::new(1, 3).with_kernel(FragmentKernel::Soa);
        assert_eq!(rung.kernel, Some(FragmentKernel::Soa));
        let ladder = QualityLadder::new().with_rung(rung);
        assert_eq!(ladder.kernels(), vec![None, Some(FragmentKernel::Soa)]);
    }
}
