//! Hardware early termination (HET) — paper §V-B, Fig. 13.
//!
//! Three lightweight units repurpose the stencil-test hardware:
//!
//! 1. **Termination test unit** (in ZROP): at TC-bin flush, reads the
//!    stencil MSB of each quad's covered pixels and discards quads whose
//!    covered pixels are all terminated, *before* fragment shading.
//! 2. **Alpha test unit** (in CROP): after blending, checks
//!    `prev α < θ ≤ new α` — the "newly crossed" filter avoids flooding
//!    ZROP with redundant update requests (paper's bandwidth-contention
//!    argument).
//! 3. **Termination update unit** (in ZROP): sets the stencil MSB with a
//!    bitwise OR, preserving the low 7 stencil bits.

use gpu_sim::quad::Quad;
use gsplat::blend::EARLY_TERMINATION_THRESHOLD;
use gsplat::framebuffer::DepthStencilBuffer;

/// Outcome of the ZROP termination test for one quad.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TerminationTest {
    /// `true` when at least one covered fragment is not yet terminated and
    /// the quad proceeds to shading.
    pub survives: bool,
    /// Covered fragments whose pixel is already terminated (these lanes do
    /// no useful work even if the quad survives).
    pub terminated_fragments: u32,
}

/// Termination test unit: checks a quad against the stencil MSB.
///
/// A quad is discarded only when *all* its covered pixels are terminated
/// (paper: "quads with at least one fragment that passes the early
/// termination test are sent back to the PROP").
pub fn termination_test(quad: &Quad, ds: &DepthStencilBuffer) -> TerminationTest {
    let mut terminated = 0u32;
    let mut any_alive = false;
    for i in 0..4 {
        if !quad.covers(i) {
            continue;
        }
        let (x, y) = quad.fragment_xy(i);
        if x < ds.width() && y < ds.height() && ds.is_terminated(x, y) {
            terminated += 1;
        } else {
            any_alive = true;
        }
    }
    TerminationTest {
        survives: any_alive,
        terminated_fragments: terminated,
    }
}

/// Alpha test unit: returns `true` when this blend *newly* crosses the
/// termination threshold and a termination update must be sent to ZROP.
///
/// # Examples
///
/// ```
/// use vrpipe::het::alpha_test;
/// assert!(alpha_test(0.9, 0.997));   // newly crossed → update
/// assert!(!alpha_test(0.997, 0.999)); // already terminated → no traffic
/// assert!(!alpha_test(0.5, 0.6));     // not terminated → no traffic
/// ```
#[inline]
pub fn alpha_test(prev_alpha: f32, new_alpha: f32) -> bool {
    prev_alpha < EARLY_TERMINATION_THRESHOLD && new_alpha >= EARLY_TERMINATION_THRESHOLD
}

/// Termination update unit: sets the stencil MSB for a newly terminated
/// pixel (bitwise OR write-back through the z-cache).
#[inline]
pub fn termination_update(ds: &mut DepthStencilBuffer, x: u32, y: u32) {
    ds.set_terminated(x, y);
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::tiles::{QuadPos, TileId};

    fn quad_at(x: u32, y: u32, coverage: u8) -> Quad {
        Quad {
            tile: TileId {
                x: x / 16,
                y: y / 16,
            },
            pos: QuadPos {
                x: ((x % 16) / 2) as u8,
                y: ((y % 16) / 2) as u8,
            },
            origin: (x, y),
            coverage,
            splat: 0,
        }
    }

    #[test]
    fn quad_survives_with_one_live_pixel() {
        let mut ds = DepthStencilBuffer::new(16, 16);
        ds.set_terminated(0, 0);
        ds.set_terminated(1, 0);
        ds.set_terminated(0, 1);
        let t = termination_test(&quad_at(0, 0, 0xF), &ds);
        assert!(t.survives);
        assert_eq!(t.terminated_fragments, 3);
    }

    #[test]
    fn quad_discarded_when_all_covered_terminated() {
        let mut ds = DepthStencilBuffer::new(16, 16);
        ds.set_terminated(0, 0);
        ds.set_terminated(1, 0);
        // Coverage only over the two terminated pixels.
        let t = termination_test(&quad_at(0, 0, 0b0011), &ds);
        assert!(!t.survives);
        assert_eq!(t.terminated_fragments, 2);
    }

    #[test]
    fn uncovered_fragments_do_not_keep_quad_alive() {
        let mut ds = DepthStencilBuffer::new(16, 16);
        for (x, y) in [(2u32, 2u32), (3, 2), (2, 3), (3, 3)] {
            ds.set_terminated(x, y);
        }
        let t = termination_test(&quad_at(2, 2, 0xF), &ds);
        assert!(!t.survives);
    }

    #[test]
    fn alpha_test_crossing_filter() {
        let th = EARLY_TERMINATION_THRESHOLD;
        assert!(alpha_test(th - 0.01, th));
        assert!(alpha_test(0.0, 1.0));
        assert!(!alpha_test(th, th + 0.001));
        assert!(!alpha_test(0.1, 0.2));
    }

    #[test]
    fn update_sets_msb_only() {
        let mut ds = DepthStencilBuffer::new(4, 4);
        ds.set_stencil(1, 1, 0x3C);
        termination_update(&mut ds, 1, 1);
        assert!(ds.is_terminated(1, 1));
        assert_eq!(ds.stencil(1, 1), 0x3C | 0x80);
    }
}
