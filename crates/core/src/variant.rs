//! Pipeline variants evaluated in the paper (Fig. 16): the baseline
//! graphics pipeline and the three VR-Pipe configurations.

use serde::{Deserialize, Serialize};

/// Which VR-Pipe hardware extensions are enabled.
///
/// # Examples
///
/// ```
/// use vrpipe::PipelineVariant;
/// assert!(PipelineVariant::HetQm.het() && PipelineVariant::HetQm.qm());
/// assert!(!PipelineVariant::Baseline.het());
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PipelineVariant {
    /// Conventional graphics pipeline (no extensions).
    #[default]
    Baseline,
    /// Multi-granular tile binning with quad merging only.
    Qm,
    /// Hardware early termination only.
    Het,
    /// Both extensions — full VR-Pipe.
    HetQm,
}

impl PipelineVariant {
    /// All variants in the paper's figure order.
    pub const ALL: [PipelineVariant; 4] = [
        PipelineVariant::Baseline,
        PipelineVariant::Qm,
        PipelineVariant::Het,
        PipelineVariant::HetQm,
    ];

    /// `true` when hardware early termination is enabled.
    #[inline]
    pub fn het(self) -> bool {
        matches!(self, PipelineVariant::Het | PipelineVariant::HetQm)
    }

    /// `true` when quad merging (and the TGC unit) is enabled.
    #[inline]
    pub fn qm(self) -> bool {
        matches!(self, PipelineVariant::Qm | PipelineVariant::HetQm)
    }

    /// Label as used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            PipelineVariant::Baseline => "Baseline",
            PipelineVariant::Qm => "QM",
            PipelineVariant::Het => "HET",
            PipelineVariant::HetQm => "HET+QM",
        }
    }
}

impl std::fmt::Display for PipelineVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_flags() {
        assert!(!PipelineVariant::Baseline.het() && !PipelineVariant::Baseline.qm());
        assert!(!PipelineVariant::Qm.het() && PipelineVariant::Qm.qm());
        assert!(PipelineVariant::Het.het() && !PipelineVariant::Het.qm());
        assert!(PipelineVariant::HetQm.het() && PipelineVariant::HetQm.qm());
    }

    #[test]
    fn labels_match_paper() {
        let labels: Vec<&str> = PipelineVariant::ALL.iter().map(|v| v.label()).collect();
        assert_eq!(labels, vec!["Baseline", "QM", "HET", "HET+QM"]);
    }
}
