//! # vrpipe — Streamlining the Hardware Graphics Pipeline for Volume Rendering
//!
//! A full reproduction of **VR-Pipe** (HPCA 2025): two hardware extensions
//! to the conventional graphics pipeline that accelerate volume-rendering
//! workloads such as 3D Gaussian splatting.
//!
//! * **HET — hardware early termination** ([`het`]): repurposes the stencil
//!   MSB as a per-pixel termination flag; quads of fully terminated pixels
//!   are discarded before fragment shading.
//! * **QM — multi-granular tile binning with quad merging** ([`qm`]): a
//!   tile-grid coalescing unit plus a quad reorder unit that pairs
//!   overlapping quads so the fragment shader partially blends them,
//!   halving ROP traffic for merged pairs.
//!
//! The [`pipeline`] module assembles the unit models from `gpu-sim` into
//! the four evaluated variants ([`PipelineVariant`]); [`Renderer`] is the
//! end-to-end entry point. [`sequence`] turns the single-frame renderers
//! into temporally coherent frame streams ([`Session`]), and [`serve`]
//! schedules many such streams over one [`SharedScene`] — shared scene +
//! spatial index, private per-stream state — across a persistent worker
//! pool, with dynamic admission/eviction, per-stream deadlines, failure
//! containment ([`StreamPhase`], [`serve::faults`]) and deterministic
//! overload degradation ([`serve::degrade`]).
//!
//! ```
//! use gpu_sim::config::GpuConfig;
//! use gsplat::scene::EVALUATED_SCENES;
//! use vrpipe::{PipelineVariant, Renderer};
//!
//! let scene = EVALUATED_SCENES[4].generate_scaled(0.04); // small "Lego"
//! let cam = scene.default_camera();
//! let base = Renderer::new(GpuConfig::default(), PipelineVariant::Baseline)
//!     .render(&scene, &cam);
//! let vrp = Renderer::new(GpuConfig::default(), PipelineVariant::HetQm)
//!     .render(&scene, &cam);
//! assert!(vrp.stats.total_cycles < base.stats.total_cycles);
//! ```

pub mod cost;
pub mod energy;
pub mod het;
pub mod pipeline;
pub mod qm;
pub mod renderer;
pub mod sequence;
pub mod serve;
pub mod shading;
pub mod variant;

pub use cost::HardwareCost;
pub use energy::EnergyModel;
pub use pipeline::{
    draw, draw_in_place, draw_with_scratch, try_draw, try_draw_in_place, try_draw_with_scratch,
    DrawError, DrawOutput, DrawScratch,
};
pub use renderer::{Frame, FrameScratch, Renderer, TimeBreakdown};
pub use sequence::{FrameInput, SequenceConfig, SequenceFrameRecord, Session, SharedScene};
pub use serve::degrade::{QualityLadder, QualityRung};
pub use serve::faults::{FaultAction, FaultInjector, FaultKind, FaultPlan, PlannedFault};
pub use serve::{
    AdmissionPolicy, AttachOutcome, BatchStats, EvictReason, ReloadOutcome, RetryPolicy,
    SceneSource, SchedulePolicy, ServeReport, Server, ServerHandle, StreamFault, StreamPhase,
    StreamReport, StreamSpec,
};
pub use variant::PipelineVariant;
