//! Fragment shading and shader-side partial blending.
//!
//! The Gaussian fragment shader is deliberately simple (paper §III-B): one
//! dot product against the conic, one exponential, and the alpha-pruning
//! branch. Quad merging appends a short epilogue — a warp shuffle plus one
//! front-to-back blend — executed only by merge-flagged quads (Fig. 15).

use gpu_sim::quad::{Quad, ShadedQuad};
use gsplat::blend::fragment_alpha;
use gsplat::math::Vec3;
use gsplat::splat::Splat;
use gsplat::stream::SplatStream;

/// Shades one quad: evaluates the Gaussian falloff alpha per covered
/// fragment and applies alpha pruning (α < 1/255 lanes are killed).
// vrlint: hot
// vrlint: allow-block(VL01[index], reason = "fragment lanes index fixed [T; 4] quad arrays with i in 0..4")
pub fn shade_quad(quad: &Quad, splat: &Splat) -> ShadedQuad {
    let mut rgb = [Vec3::ZERO; 4];
    let mut alpha = [0.0f32; 4];
    let mut alive = 0u8;
    for i in 0..4 {
        if !quad.covers(i) {
            continue;
        }
        let (x, y) = quad.fragment_xy(i);
        let dx = x as f32 + 0.5 - splat.center.x;
        let dy = y as f32 + 0.5 - splat.center.y;
        if let Some(a) = fragment_alpha(splat.opacity, splat.conic, dx, dy) {
            rgb[i] = splat.color;
            alpha[i] = a;
            alive |= 1 << i;
        }
    }
    ShadedQuad {
        quad: *quad,
        rgb,
        alpha,
        alive,
        merged: false,
    }
}

/// [`shade_quad`] reading the quad's source splat from a SoA
/// [`SplatStream`] instead of the AoS list.
///
/// The stream's scalar loads (center, conic, opacity, color) come from
/// flat slices — four sequential cache lines instead of one strided
/// 64-byte struct — and the per-fragment arithmetic is the identical
/// [`fragment_alpha`] call, so the shaded quad is bit-exact with the
/// scalar path's.
// vrlint: hot
// vrlint: allow-block(VL01[index], reason = "quad.splat indexes the SoA stream the quad was rasterized from; lanes index fixed [T; 4] arrays")
pub fn shade_quad_stream(quad: &Quad, stream: &SplatStream) -> ShadedQuad {
    let si = quad.splat as usize;
    let cx = stream.center_x()[si];
    let cy = stream.center_y()[si];
    let conic = stream.conic(si);
    let opacity = stream.opacity()[si];
    let color = stream.color(si);
    let mut rgb = [Vec3::ZERO; 4];
    let mut alpha = [0.0f32; 4];
    let mut alive = 0u8;
    for i in 0..4 {
        if !quad.covers(i) {
            continue;
        }
        let (x, y) = quad.fragment_xy(i);
        let dx = x as f32 + 0.5 - cx;
        let dy = y as f32 + 0.5 - cy;
        if let Some(a) = fragment_alpha(opacity, conic, dx, dy) {
            rgb[i] = color;
            alpha[i] = a;
            alive |= 1 << i;
        }
    }
    ShadedQuad {
        quad: *quad,
        rgb,
        alpha,
        alive,
        merged: false,
    }
}

/// Pre-multiplied RGBA of one shaded fragment, handling both straight
/// (just-shaded) and already-merged quads.
#[inline]
pub fn premultiplied_fragment(sq: &ShadedQuad, i: usize) -> (Vec3, f32) {
    if sq.merged {
        // Merged quads already carry pre-multiplied partial blends.
        (sq.rgb[i], sq.alpha[i])
    } else {
        (sq.rgb[i] * sq.alpha[i], sq.alpha[i])
    }
}

/// Shader-side partial blend of a merge pair (paper Fig. 15): the back
/// quad's threads fetch the front quad's fragments via warp shuffle and
/// blend `ffb(front, back)` per pixel, producing one merged quad.
///
/// Both quads cover the same quad position; per-pixel, a lane where only
/// one source is alive passes that source through.
///
/// # Panics
///
/// Panics (debug) when the quads are not at the same framebuffer position.
pub fn merge_pair(front: &ShadedQuad, back: &ShadedQuad) -> ShadedQuad {
    debug_assert_eq!(
        front.quad.origin, back.quad.origin,
        "merge pair must share a quad position"
    );
    let mut rgb = [Vec3::ZERO; 4];
    let mut alpha = [0.0f32; 4];
    let mut alive = 0u8;
    for i in 0..4 {
        let f_alive = front.alive & (1 << i) != 0;
        let b_alive = back.alive & (1 << i) != 0;
        if !f_alive && !b_alive {
            continue;
        }
        alive |= 1 << i;
        let (f_rgb, f_a) = premultiplied_fragment(front, i);
        let (b_rgb, b_a) = premultiplied_fragment(back, i);
        if f_alive && b_alive {
            // ffb(c1, c2) = c1 + (1 - a1) * c2 in pre-multiplied space.
            let t = 1.0 - f_a;
            rgb[i] = f_rgb + b_rgb * t;
            alpha[i] = f_a + b_a * t;
        } else if f_alive {
            rgb[i] = f_rgb;
            alpha[i] = f_a;
        } else {
            rgb[i] = b_rgb;
            alpha[i] = b_a;
        }
    }
    ShadedQuad {
        quad: front.quad,
        rgb,
        alpha,
        alive,
        merged: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::tiles::{QuadPos, TileId};
    use gsplat::math::Vec2;

    fn test_splat(cx: f32, cy: f32, opacity: f32, color: Vec3) -> Splat {
        Splat {
            center: Vec2::new(cx, cy),
            depth: 1.0,
            conic: (0.05, 0.0, 0.05),
            axis_major: Vec2::new(10.0, 0.0),
            axis_minor: Vec2::new(0.0, 10.0),
            color,
            opacity,
            source: 0,
        }
    }

    fn full_quad(x: u32, y: u32) -> Quad {
        Quad {
            tile: TileId {
                x: x / 16,
                y: y / 16,
            },
            pos: QuadPos {
                x: ((x % 16) / 2) as u8,
                y: ((y % 16) / 2) as u8,
            },
            origin: (x, y),
            coverage: 0xF,
            splat: 0,
        }
    }

    #[test]
    fn shading_respects_coverage_and_pruning() {
        let splat = test_splat(1.0, 1.0, 0.9, Vec3::new(1.0, 0.0, 0.0));
        let mut q = full_quad(0, 0);
        q.coverage = 0b0101;
        let sq = shade_quad(&q, &splat);
        assert_eq!(
            sq.alive & !q.coverage,
            0,
            "alive must be subset of coverage"
        );
        assert!(sq.alive & 1 != 0, "center fragment must be alive");
        // Near the center, alpha approaches the opacity.
        assert!(sq.alpha[0] > 0.8);
    }

    #[test]
    fn stream_shading_matches_scalar_bit_exactly() {
        let splats: Vec<Splat> = (0..6)
            .map(|i| {
                let mut s = test_splat(3.0 + i as f32, 2.0, 0.2 + 0.1 * i as f32, Vec3::splat(0.4));
                s.conic = (0.05 + 0.01 * i as f32, 0.005, 0.06);
                s
            })
            .collect();
        let stream = SplatStream::from_splats(&splats);
        for (i, s) in splats.iter().enumerate() {
            let mut q = full_quad(2, 2);
            q.splat = i as u32;
            q.coverage = 0b1101;
            assert_eq!(shade_quad_stream(&q, &stream), shade_quad(&q, s), "{i}");
        }
    }

    #[test]
    fn distant_fragments_are_pruned() {
        let mut splat = test_splat(1000.0, 1000.0, 0.9, Vec3::splat(1.0));
        splat.conic = (1.0, 0.0, 1.0);
        let sq = shade_quad(&full_quad(0, 0), &splat);
        assert!(sq.is_dead());
    }

    #[test]
    fn merge_matches_sequential_blend() {
        let s1 = test_splat(1.0, 1.0, 0.6, Vec3::new(1.0, 0.0, 0.0));
        let s2 = test_splat(1.0, 1.0, 0.8, Vec3::new(0.0, 1.0, 0.0));
        let q = full_quad(0, 0);
        let front = shade_quad(&q, &s1);
        let back = shade_quad(&q, &s2);
        let merged = merge_pair(&front, &back);
        assert!(merged.merged);
        for i in 0..4 {
            let (f_rgb, f_a) = premultiplied_fragment(&front, i);
            let (b_rgb, b_a) = premultiplied_fragment(&back, i);
            let expect_rgb = f_rgb + b_rgb * (1.0 - f_a);
            let expect_a = f_a + b_a * (1.0 - f_a);
            let (m_rgb, m_a) = premultiplied_fragment(&merged, i);
            assert!((m_rgb - expect_rgb).length() < 1e-6);
            assert!((m_a - expect_a).abs() < 1e-6);
        }
    }

    #[test]
    fn merge_passes_through_single_alive_lane() {
        let s1 = test_splat(1.0, 1.0, 0.6, Vec3::new(1.0, 0.0, 0.0));
        let q = full_quad(0, 0);
        let front = shade_quad(&q, &s1);
        let mut back = shade_quad(&q, &s1);
        back.alive = 0; // back quad fully pruned
        let merged = merge_pair(&front, &back);
        assert_eq!(merged.alive, front.alive);
        let (m_rgb, m_a) = premultiplied_fragment(&merged, 0);
        let (f_rgb, f_a) = premultiplied_fragment(&front, 0);
        assert_eq!(m_rgb, f_rgb);
        assert_eq!(m_a, f_a);
    }

    #[test]
    fn merge_is_associativity_preserving_through_rop() {
        // Blending (merged) into a destination equals blending the two
        // fragments sequentially — the core QM correctness property.
        use gsplat::blend::blend_over;
        use gsplat::color::Rgba;
        let s1 = test_splat(1.0, 1.0, 0.5, Vec3::new(0.9, 0.1, 0.3));
        let s2 = test_splat(1.0, 1.0, 0.7, Vec3::new(0.2, 0.8, 0.4));
        let q = full_quad(0, 0);
        let front = shade_quad(&q, &s1);
        let back = shade_quad(&q, &s2);
        let merged = merge_pair(&front, &back);

        let dest = Rgba::new(0.1, 0.1, 0.1, 0.3); // pre-multiplied, in front
                                                  // Sequential: dest ⊕ front ⊕ back.
        let (f_rgb, f_a) = premultiplied_fragment(&front, 0);
        let (b_rgb, b_a) = premultiplied_fragment(&back, 0);
        let seq = blend_over(
            blend_over(dest, Rgba::from_rgb(f_rgb, f_a)),
            Rgba::from_rgb(b_rgb, b_a),
        );
        // Merged: dest ⊕ merged.
        let (m_rgb, m_a) = premultiplied_fragment(&merged, 0);
        let one = blend_over(dest, Rgba::from_rgb(m_rgb, m_a));
        assert!(seq.max_abs_diff(one) < 1e-6);
    }
}
