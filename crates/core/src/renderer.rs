//! High-level rendering API: scene + camera + variant → frame, plus the
//! end-to-end time model (preprocessing + sorting + draw call) used by the
//! paper's overall comparison (Figs. 5 and 17).

use gpu_sim::config::GpuConfig;
use gpu_sim::stats::PipelineStats;
use gsplat::camera::Camera;
use gsplat::framebuffer::ColorBuffer;
use gsplat::preprocess::{preprocess_into, PreprocessScratch, PreprocessStats};
use gsplat::scene::Scene;
use gsplat::splat::Splat;
use serde::{Deserialize, Serialize};

use crate::pipeline::{draw_with_scratch, DrawScratch};
use crate::variant::PipelineVariant;

/// Per-gaussian preprocessing cost on the reference edge GPU (ms per
/// Gaussian) — calibrated against the AGX Orin numbers the paper uses for
/// its end-to-end estimate (§VI-B footnote 6: preprocess + sort are taken
/// from AGX Orin measurements in both the paper and this model).
pub const PREPROCESS_MS_PER_GAUSSIAN: f64 = 6.0e-6;
/// Per-splat radix-sort cost on the reference edge GPU (ms per visible
/// splat, CUB-style device radix sort).
pub const SORT_MS_PER_SPLAT: f64 = 8.0e-6;

/// A rendered frame: the image plus all measurements.
#[derive(Debug, Clone)]
pub struct Frame {
    /// Rendered (pre-multiplied) color buffer.
    pub color: ColorBuffer,
    /// Hardware-pipeline statistics of the draw call.
    pub stats: PipelineStats,
    /// Preprocessing statistics.
    pub preprocess: PreprocessStats,
    /// End-to-end time breakdown, extrapolated to full scene scale.
    pub time: TimeBreakdown,
}

/// End-to-end frame-time breakdown in milliseconds (Fig. 5's stacking).
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimeBreakdown {
    /// Frustum culling, projection, SH evaluation (CUDA kernels).
    pub preprocess_ms: f64,
    /// Global depth sort (CUB radix sort).
    pub sort_ms: f64,
    /// The draw call through the hardware pipeline (our simulator).
    pub rasterize_ms: f64,
}

impl TimeBreakdown {
    /// Total frame time.
    pub fn total_ms(&self) -> f64 {
        self.preprocess_ms + self.sort_ms + self.rasterize_ms
    }

    /// Frames per second implied by the total.
    pub fn fps(&self) -> f64 {
        if self.total_ms() > 0.0 {
            1000.0 / self.total_ms()
        } else {
            0.0
        }
    }
}

/// Renders Gaussian-splatting scenes through the (extended) hardware
/// graphics pipeline.
///
/// # Examples
///
/// ```
/// use gpu_sim::config::GpuConfig;
/// use gsplat::scene::EVALUATED_SCENES;
/// use vrpipe::{PipelineVariant, Renderer};
///
/// let scene = EVALUATED_SCENES[4].generate_scaled(0.04);
/// let renderer = Renderer::new(GpuConfig::default(), PipelineVariant::HetQm);
/// let frame = renderer.render(&scene, &scene.default_camera());
/// assert!(frame.time.rasterize_ms > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Renderer {
    cfg: GpuConfig,
    variant: PipelineVariant,
}

impl Renderer {
    /// Creates a renderer for a GPU configuration and pipeline variant.
    pub fn new(cfg: GpuConfig, variant: PipelineVariant) -> Self {
        Self { cfg, variant }
    }

    /// The GPU configuration in use.
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// The pipeline variant in use.
    pub fn variant(&self) -> PipelineVariant {
        self.variant
    }

    /// Renders one frame: preprocess + sort (cost model) and the simulated
    /// draw call.
    ///
    /// Because scenes are generated at a reduced `scale` (DESIGN.md §2),
    /// draw-call cycles are extrapolated to full scale by `1/scale²` (work
    /// is proportional to pixels × depth complexity, both scaling with
    /// `scale²`); preprocessing and sorting scale with the full Gaussian
    /// count directly.
    pub fn render(&self, scene: &Scene, camera: &Camera) -> Frame {
        self.render_with(scene, camera, &mut FrameScratch::default())
    }

    /// [`Renderer::render`] reusing caller-owned scratch buffers: the
    /// frame loop's intermediates (projection chunks, sort keys, raster
    /// quads, per-flush staging) allocate nothing after the first frame;
    /// only the returned frame's image buffers are fresh.
    pub fn render_with(&self, scene: &Scene, camera: &Camera, scratch: &mut FrameScratch) -> Frame {
        let pre_stats = preprocess_into(
            scene,
            camera,
            self.cfg.thread_policy(),
            &mut scratch.preprocess,
            &mut scratch.splats,
        );
        let out = draw_with_scratch(
            &scratch.splats,
            camera.width(),
            camera.height(),
            &self.cfg,
            self.variant,
            &mut scratch.draw,
        );
        let scale2 = (scene.scale as f64) * (scene.scale as f64);
        let full_gaussians = scene.spec.gaussians as f64;
        let full_visible = pre_stats.visible_splats as f64 / scale2;
        let time = TimeBreakdown {
            preprocess_ms: full_gaussians * PREPROCESS_MS_PER_GAUSSIAN,
            sort_ms: full_visible * SORT_MS_PER_SPLAT,
            rasterize_ms: self.cfg.cycles_to_ms(out.stats.total_cycles) / scale2,
        };
        Frame {
            color: out.color,
            stats: out.stats,
            preprocess: pre_stats,
            time,
        }
    }
}

/// Reusable buffers for [`Renderer::render_with`]: preprocessing scratch,
/// the sorted splat list and the draw-call scratch.
#[derive(Debug, Default)]
pub struct FrameScratch {
    preprocess: PreprocessScratch,
    splats: Vec<Splat>,
    draw: DrawScratch,
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsplat::scene::EVALUATED_SCENES;

    #[test]
    fn render_small_scene_all_variants() {
        let scene = EVALUATED_SCENES[4].generate_scaled(0.04); // Lego
        let cam = scene.default_camera();
        let mut times = Vec::new();
        for v in PipelineVariant::ALL {
            let frame = Renderer::new(GpuConfig::default(), v).render(&scene, &cam);
            assert!(frame.stats.total_cycles > 0, "{v}");
            assert!(frame.color.mean_alpha() > 0.0, "{v}");
            times.push((v, frame.time.rasterize_ms));
        }
        // HET+QM must beat the baseline.
        let base = times[0].1;
        let hetqm = times[3].1;
        assert!(
            hetqm < base,
            "HET+QM ({hetqm:.3} ms) must be faster than baseline ({base:.3} ms)"
        );
    }

    #[test]
    fn time_breakdown_totals() {
        let t = TimeBreakdown {
            preprocess_ms: 2.0,
            sort_ms: 3.0,
            rasterize_ms: 5.0,
        };
        assert_eq!(t.total_ms(), 10.0);
        assert_eq!(t.fps(), 100.0);
        assert_eq!(TimeBreakdown::default().fps(), 0.0);
    }

    #[test]
    fn scale_extrapolation_is_scale_invariant_within_tolerance() {
        // Rendering at two scales must give comparable full-scale times.
        let spec = &EVALUATED_SCENES[4];
        let cam_a;
        let cam_b;
        let a = {
            let s = spec.generate_scaled(0.05);
            cam_a = s.default_camera();
            Renderer::new(GpuConfig::default(), PipelineVariant::Baseline).render(&s, &cam_a)
        };
        let b = {
            let s = spec.generate_scaled(0.08);
            cam_b = s.default_camera();
            Renderer::new(GpuConfig::default(), PipelineVariant::Baseline).render(&s, &cam_b)
        };
        let ratio = a.time.rasterize_ms / b.time.rasterize_ms;
        assert!(
            ratio > 0.4 && ratio < 2.5,
            "scale extrapolation drifted: {ratio:.2}"
        );
    }
}
