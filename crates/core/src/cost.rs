//! Hardware cost of the VR-Pipe extensions (paper Table III).
//!
//! The extensions are storage-dominated; computational logic (bitwise
//! operators, comparators, two FP comparators in the alpha test unit) is
//! negligible next to the SRAM, so — like the paper — we account storage
//! only.

use gpu_sim::config::GpuConfig;
use serde::{Deserialize, Serialize};

/// Storage cost breakdown in bytes (per GPC).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HardwareCost {
    /// Tile Grid Coalescing unit: per bin, `tgc_bin_size` primitive entries
    /// of 3 × 4-byte circular-buffer-entry (CBE) pointers, plus a 2-byte
    /// tile-grid ID.
    pub tgc_bytes: usize,
    /// Quad Reorder Unit: 128 quad entries of a 4-byte CBE pointer plus a
    /// 6-bit quad position, 64 × 1-byte position registers, and a 16-byte
    /// merge bitmap.
    pub qru_bytes: usize,
}

impl HardwareCost {
    /// Computes the cost for a configuration (Table III uses the default).
    pub fn for_config(cfg: &GpuConfig) -> Self {
        // (4B CBE pointer * 3 vertices * bin_size entries + 2B grid ID) * bins
        let tgc_bytes = (4 * 3 * cfg.tgc_bin_size + 2) * cfg.tgc_bins;
        // (4B CBE pointer + 6-bit quad position) * 128 quads, in bits,
        // + 64 * 1B registers + 128-bit bitmap.
        let qru_entry_bits = 4 * 8 + 6;
        let qru_bytes = (qru_entry_bits * cfg.tc_bin_size).div_ceil(8) + 64 + 16;
        Self {
            tgc_bytes,
            qru_bytes,
        }
    }

    /// Total extension storage in bytes.
    pub fn total_bytes(&self) -> usize {
        self.tgc_bytes + self.qru_bytes
    }

    /// Total in kibibytes (Table III reports 24.92 KB).
    pub fn total_kib(&self) -> f64 {
        self.total_bytes() as f64 / 1024.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iii_figures() {
        let cost = HardwareCost::for_config(&GpuConfig::default());
        // TGC: (4*3*16 + 2) * 128 = 24832 B = 24.25 KB.
        assert_eq!(cost.tgc_bytes, 24_832);
        assert!((cost.tgc_bytes as f64 / 1024.0 - 24.25).abs() < 0.01);
        // QRU: 38 bits * 128 / 8 + 64 + 16 = 688 B.
        assert_eq!(cost.qru_bytes, 688);
        // Total ≈ 24.92 KB.
        assert!((cost.total_kib() - 24.92).abs() < 0.02);
    }

    #[test]
    fn cost_scales_with_bin_count() {
        let cfg = GpuConfig {
            tgc_bins: 256,
            ..GpuConfig::default()
        };
        let doubled = HardwareCost::for_config(&cfg);
        let base = HardwareCost::for_config(&GpuConfig::default());
        assert_eq!(doubled.tgc_bytes, base.tgc_bytes * 2);
    }
}
