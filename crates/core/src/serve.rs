//! Multi-session serving: N concurrent coherent streams over one shared
//! scene — the paper's deployment shape (many head-tracked viewers of the
//! same world) scaled past a single [`Session`].
//!
//! A [`Server`] owns one [`SharedScene`] (scene + `Arc<SceneIndex>`, built
//! once), a set of streams (each its own [`CameraPath`] via
//! [`SequenceConfig`], resolution, backend closure and per-stream
//! [`Session`]), and a persistent [`WorkerPool`] with a run-to-completion
//! task queue. The scheduler dispatches **ready frames** — a stream is
//! ready when it has frames left and none in flight — across the pool,
//! oldest-frame-first with round-robin tie-breaking, so no stream starves
//! and the pool never idles while work remains.
//!
//! **Bit-exactness under interleaving.** Every stream's output is
//! bit-exact with running that stream alone in a solo [`Session`], for any
//! pool size and any service order, because the scheduler moves only
//! *whole frames* and every piece of mutable state a frame touches is
//! owned by exactly one stream: the sorter warm start, the
//! [`gsplat::index::CullState`] (classification + covariance cache) and
//! the backend's targets all live in that stream's session, each stream's
//! frames run in order with at most one in flight, and the shared scene
//! and [`SceneIndex`] are immutable. Interleaving therefore permutes
//! *wall-clock* execution, never any stream's state trajectory — enforced
//! by `tests/serve.rs` and the scheduling-shuffle property test.
//!
//! [`CameraPath`]: gsplat::camera::CameraPath
//! [`SceneIndex`]: gsplat::index::SceneIndex

use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use gpu_sim::config::GpuConfig;
use gsplat::index::CullStats;
use gsplat::par::WorkerPool;
use gsplat::sort::ResortStats;
use gsplat::ThreadPolicy;

use crate::pipeline::DrawError;
use crate::sequence::{FrameInput, SequenceConfig, SequenceFrameRecord, Session, SharedScene};
use crate::variant::PipelineVariant;

/// Boxed per-frame backend of one stream.
type RenderFn<R> = Box<dyn FnMut(FrameInput<'_>) -> R + Send>;

/// Field-wise `now - earlier` over the session-lifetime resort counters,
/// so a [`StreamReport`] covers exactly one run.
fn resort_delta(now: ResortStats, earlier: &ResortStats) -> ResortStats {
    ResortStats {
        frames: now.frames - earlier.frames,
        repaired: now.repaired - earlier.repaired,
        radix_fallbacks: now.radix_fallbacks - earlier.radix_fallbacks,
        repair_shifts: now.repair_shifts - earlier.repair_shifts,
    }
}

/// How one stream turns a prepared frame into its output.
enum Backend<R> {
    /// A caller-supplied closure over the preprocessed [`FrameInput`].
    Closure(RenderFn<R>),
    /// The built-in simulated-hardware path, routed through
    /// [`Session::render_frame_vrpipe`] so it reuses the session-owned
    /// [`crate::pipeline::DrawScratch`] and persistent render targets.
    /// `wrap` converts the record into the server's `R` (the identity —
    /// this variant is only constructible when the types line up).
    VrPipe {
        gpu: GpuConfig,
        variant: PipelineVariant,
        wrap: fn(Result<SequenceFrameRecord, DrawError>) -> R,
    },
}

/// How the scheduler picks among ready streams.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub enum SchedulePolicy {
    /// Serve the ready stream with the fewest completed frames (no stream
    /// falls behind); ties rotate round-robin from the last dispatch.
    /// This is the default.
    #[default]
    OldestFirst,
    /// Pick a ready stream pseudo-randomly from the seed — a test policy
    /// that shuffles service order to *prove* scheduling cannot change
    /// output bits (it exercises interleavings the default never would).
    Seeded(u64),
}

/// One stream's definition: a name, its sequence (camera path, frame
/// budget, viewport, temporal/indexed knobs) and the per-frame backend
/// closure receiving the preprocessed [`FrameInput`].
pub struct StreamSpec<R> {
    name: String,
    cfg: SequenceConfig,
    build_stream: bool,
    backend: Backend<R>,
}

impl<R> std::fmt::Debug for StreamSpec<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamSpec")
            .field("name", &self.name)
            .field("cfg", &self.cfg)
            .finish_non_exhaustive()
    }
}

impl<R: Send + 'static> StreamSpec<R> {
    /// A stream rendering `cfg` through `render` — any backend that can
    /// consume a [`FrameInput`] (the three `swrender` backends, the
    /// in-shader workload model, or arbitrary instrumentation). State the
    /// backend needs across frames lives inside the closure.
    ///
    /// Configure the backend's own renderer **serially** (e.g.
    /// `SwConfig { threads: 1, .. }`): served parallelism comes from
    /// concurrent streams sharing the pool, and a backend that fork-joins
    /// over the whole host inside its frame oversubscribes it M-fold
    /// (results are bit-identical either way — only wall time suffers).
    pub fn new(
        name: impl Into<String>,
        cfg: SequenceConfig,
        render: impl FnMut(FrameInput<'_>) -> R + Send + 'static,
    ) -> Self {
        Self {
            name: name.into(),
            cfg,
            build_stream: false,
            backend: Backend::Closure(Box::new(render)),
        }
    }

    /// Also maintain the SoA [`gsplat::stream::SplatStream`] mirror each
    /// frame (for backends consuming streams directly, e.g.
    /// `CudaLikeRenderer::render_prepared`).
    pub fn with_stream(mut self) -> Self {
        self.build_stream = true;
        self
    }

    /// The stream's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The stream's sequence configuration.
    pub fn cfg(&self) -> &SequenceConfig {
        &self.cfg
    }
}

impl StreamSpec<Result<SequenceFrameRecord, DrawError>> {
    /// The built-in simulated-hardware backend: every frame runs through
    /// [`Session::render_frame_vrpipe`], reusing the per-stream session's
    /// own [`crate::pipeline::DrawScratch`] and persistent render targets
    /// — the serve-side equivalent of [`Session::run_vrpipe`], one
    /// implementation for both.
    ///
    /// The draw's host threading is pinned serial (`gpu.threads = 1`,
    /// bit-identical results by the determinism contract): served
    /// parallelism comes from concurrent streams sharing the pool, not
    /// from each frame fork-joining over the whole host.
    pub fn vrpipe(
        name: impl Into<String>,
        cfg: SequenceConfig,
        gpu: GpuConfig,
        variant: PipelineVariant,
    ) -> Self {
        Self {
            name: name.into(),
            cfg,
            build_stream: false,
            backend: Backend::VrPipe {
                gpu: GpuConfig { threads: 1, ..gpu },
                variant,
                wrap: std::convert::identity,
            },
        }
    }
}

/// Mutable per-stream state, touched by at most one worker at a time (the
/// scheduler never has two frames of one stream in flight).
struct StreamState<R> {
    cfg: SequenceConfig,
    session: Session,
    backend: Backend<R>,
    outputs: Vec<R>,
    frames_done: usize,
    /// Wall time spent inside this stream's frame tasks, ms.
    busy_ms: f64,
}

/// One registered stream: its immutable identity plus the shared mutable
/// state handed to worker tasks.
struct StreamEntry<R> {
    name: String,
    frames: usize,
    indexed: bool,
    state: Arc<Mutex<StreamState<R>>>,
}

/// Per-stream results and counters of one [`Server::run`].
#[derive(Debug)]
pub struct StreamReport<R> {
    /// Stream name.
    pub name: String,
    /// Per-frame backend outputs, in frame order.
    pub frames: Vec<R>,
    /// Wall time spent inside this stream's frame tasks, ms.
    pub busy_ms: f64,
    /// Delivered frame rate over the whole run's wall clock.
    pub fps: f64,
    /// Incremental re-sort counters (warm-start reuse).
    pub resort: ResortStats,
    /// Incremental culling counters (index reuse; zero when not indexed).
    pub cull: CullStats,
    /// `true` when this stream's session holds the [`SharedScene`]'s
    /// `Arc<SceneIndex>` allocation (not a private copy).
    pub shares_index: bool,
}

/// Aggregate results of one [`Server::run`].
#[derive(Debug)]
pub struct ServeReport<R> {
    /// Per-stream reports, in registration order.
    pub streams: Vec<StreamReport<R>>,
    /// Wall time of the whole run, ms.
    pub wall_ms: f64,
    /// Frames delivered across all streams.
    pub total_frames: usize,
    /// Aggregate delivered frame rate (all streams / wall clock).
    pub aggregate_fps: f64,
    /// Streams whose sessions share the scene's one `Arc<SceneIndex>`.
    pub index_sharers: usize,
    /// Streams that requested indexed preprocessing.
    pub indexed_streams: usize,
}

impl<R> ServeReport<R> {
    /// Fraction of indexed streams that share the single scene index
    /// allocation (1.0 = every indexed session reuses the shared `Arc`).
    pub fn index_share(&self) -> f64 {
        if self.indexed_streams == 0 {
            0.0
        } else {
            self.index_sharers as f64 / self.indexed_streams as f64
        }
    }
}

/// A multi-stream serving loop: one [`SharedScene`], N per-stream
/// [`Session`]s, one persistent [`WorkerPool`].
///
/// Streams render frames in their own order with at most one frame in
/// flight each; the scheduler fills the pool with ready frames under the
/// configured [`SchedulePolicy`]. Sessions run with a **serial**
/// per-frame thread policy — parallelism comes from concurrent streams
/// sharing the pool, not from each frame fork-joining over the whole
/// host (which would oversubscribe it M-fold; see
/// [`gsplat::par::WorkerPool`]).
///
/// # Examples
///
/// ```
/// use gpu_sim::config::GpuConfig;
/// use gsplat::camera::CameraPath;
/// use gsplat::scene::EVALUATED_SCENES;
/// use vrpipe::{PipelineVariant, SequenceConfig, Server, SharedScene, StreamSpec};
///
/// let scene = EVALUATED_SCENES[4].generate_scaled(0.04);
/// let shared = SharedScene::new(scene);
/// let mut server = Server::new(shared, 1);
/// for k in 0..2 {
///     let path = CameraPath::orbit(
///         server.shared().scene().center,
///         server.shared().scene().view_radius,
///         1.0 + k as f32 * 0.3,
///         0.02,
///     );
///     server.add_stream(StreamSpec::vrpipe(
///         format!("viewer-{k}"),
///         SequenceConfig::new(path, 3, 64, 48).with_index(),
///         GpuConfig::default(),
///         PipelineVariant::HetQm,
///     ));
/// }
/// let report = server.run();
/// assert_eq!(report.total_frames, 6);
/// assert_eq!(report.index_sharers, 2);
/// ```
pub struct Server<R> {
    shared: Arc<SharedScene>,
    pool: Arc<WorkerPool>,
    policy: SchedulePolicy,
    streams: Vec<StreamEntry<R>>,
    /// Round-robin cursor for tie-breaking.
    rr_next: usize,
    /// LCG state for [`SchedulePolicy::Seeded`].
    rng: u64,
}

impl<R> std::fmt::Debug for Server<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("streams", &self.streams.len())
            .field("workers", &self.pool.workers())
            .field("policy", &self.policy)
            .finish()
    }
}

impl<R: Send + 'static> Server<R> {
    /// A server over `shared` with its own pool of `threads` workers
    /// (`0` = the host budget; see [`WorkerPool::new`]).
    pub fn new(shared: SharedScene, threads: usize) -> Self {
        Self::with_pool(Arc::new(shared), Arc::new(WorkerPool::new(threads)))
    }

    /// A server borrowing an existing pool — several servers (or other
    /// subsystems) can share one host-thread budget.
    pub fn with_pool(shared: Arc<SharedScene>, pool: Arc<WorkerPool>) -> Self {
        Self {
            shared,
            pool,
            policy: SchedulePolicy::default(),
            streams: Vec::new(),
            rr_next: 0,
            rng: 0,
        }
    }

    /// Replaces the scheduling policy (default
    /// [`SchedulePolicy::OldestFirst`]).
    pub fn with_policy(mut self, policy: SchedulePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The shared scene every stream renders.
    pub fn shared(&self) -> &Arc<SharedScene> {
        &self.shared
    }

    /// The worker pool frames are scheduled onto.
    pub fn pool(&self) -> &Arc<WorkerPool> {
        &self.pool
    }

    /// Number of registered streams.
    pub fn stream_count(&self) -> usize {
        self.streams.len()
    }

    /// Registers a stream and returns its id (registration order). The
    /// stream gets a fresh serial-policy [`Session`], prepared against the
    /// shared scene (indexed configurations adopt the shared
    /// `Arc<SceneIndex>` — built now, once, if this is the first).
    pub fn add_stream(&mut self, spec: StreamSpec<R>) -> usize {
        let mut session = Session::new(ThreadPolicy::serial());
        if spec.build_stream {
            session = session.with_stream();
        }
        session.prepare_shared(&self.shared, &spec.cfg);
        let id = self.streams.len();
        self.streams.push(StreamEntry {
            name: spec.name,
            frames: spec.cfg.frames,
            indexed: spec.cfg.indexed,
            state: Arc::new(Mutex::new(StreamState {
                cfg: spec.cfg,
                session,
                backend: spec.backend,
                outputs: Vec::new(),
                frames_done: 0,
                busy_ms: 0.0,
            })),
        });
        id
    }

    /// A clone of stream `id`'s current `Arc<SceneIndex>` (for sharing
    /// assertions in tests; `None` for non-indexed streams).
    pub fn stream_index(&self, id: usize) -> Option<Arc<gsplat::index::SceneIndex>> {
        self.streams[id]
            .state
            .lock()
            .expect("stream state")
            .session
            .scene_index()
            .cloned()
    }

    /// Serves every stream's full frame budget across the pool and
    /// returns per-stream outputs and counters. Streams are then rewound:
    /// a subsequent `run` replays the same frame budgets with warm
    /// temporal state — still bit-exact (the temporal machinery never
    /// approximates), just cheaper, which is exactly what benchmark
    /// repetitions want.
    pub fn run(&mut self) -> ServeReport<R> {
        let t0 = Instant::now();
        let n = self.streams.len();
        // Counter baselines, so the report covers exactly this run even
        // though the sessions' resort/cull stats accumulate for life.
        let baselines: Vec<(ResortStats, CullStats)> = self
            .streams
            .iter()
            .map(|e| {
                let st = e.state.lock().expect("stream state");
                (st.session.resort_stats(), st.session.cull_stats())
            })
            .collect();
        let (tx, rx) = mpsc::channel::<usize>();
        let workers = self.pool.workers();
        let mut busy = vec![false; n];
        // Scheduler-side mirror of per-stream progress (exact: one frame
        // in flight per stream, completion messages drive it).
        let mut done: Vec<usize> = vec![0; n];
        let mut in_flight = 0usize;
        loop {
            while in_flight < workers {
                let Some(sid) = self.pick(&busy, &done) else {
                    break;
                };
                busy[sid] = true;
                in_flight += 1;
                let state = Arc::clone(&self.streams[sid].state);
                let scene = self.shared.scene_arc();
                let tx = tx.clone();
                // Run-to-completion frame task: locks its stream's state
                // (uncontended — the scheduler never double-dispatches a
                // stream), renders the next frame, reports back. The
                // completion message is sent from a drop guard so even a
                // panicking backend cannot strand the scheduler in
                // `recv` — the panic then surfaces as a poisoned stream
                // lock on the next touch instead of a hang.
                self.pool.submit(move || {
                    struct Complete {
                        tx: mpsc::Sender<usize>,
                        sid: usize,
                    }
                    impl Drop for Complete {
                        fn drop(&mut self) {
                            let _ = self.tx.send(self.sid);
                        }
                    }
                    let _complete = Complete { tx, sid };
                    let mut guard = state.lock().expect("stream state");
                    let st = &mut *guard;
                    let i = st.frames_done;
                    let f0 = Instant::now();
                    let StreamState {
                        cfg,
                        session,
                        backend,
                        ..
                    } = st;
                    let out = match backend {
                        Backend::Closure(render) => session.render_frame(&scene, cfg, i, render),
                        Backend::VrPipe { gpu, variant, wrap } => {
                            wrap(session.render_frame_vrpipe(&scene, cfg, i, gpu, *variant))
                        }
                    };
                    st.busy_ms += f0.elapsed().as_secs_f64() * 1e3;
                    st.outputs.push(out);
                    st.frames_done += 1;
                });
            }
            if in_flight == 0 {
                break;
            }
            let sid = rx.recv().expect("completion channel");
            busy[sid] = false;
            done[sid] += 1;
            in_flight -= 1;
            // Drain without blocking so the dispatch pass sees every
            // stream that became ready while we slept.
            while let Ok(sid) = rx.try_recv() {
                busy[sid] = false;
                done[sid] += 1;
                in_flight -= 1;
            }
        }
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

        let shared_index = self.shared.index_if_built();
        let mut streams = Vec::with_capacity(n);
        let mut total_frames = 0usize;
        let mut index_sharers = 0usize;
        let mut indexed_streams = 0usize;
        for (entry, (resort0, cull0)) in self.streams.iter_mut().zip(&baselines) {
            let mut st = entry.state.lock().expect("stream state");
            let frames = std::mem::take(&mut st.outputs);
            // Rewind for the next run; temporal state stays warm.
            st.frames_done = 0;
            let busy_ms = std::mem::replace(&mut st.busy_ms, 0.0);
            total_frames += frames.len();
            let shares_index = match (shared_index, st.session.scene_index()) {
                (Some(shared), Some(own)) => Arc::ptr_eq(shared, own),
                _ => false,
            };
            if entry.indexed {
                indexed_streams += 1;
                if shares_index {
                    index_sharers += 1;
                }
            }
            streams.push(StreamReport {
                name: entry.name.clone(),
                fps: frames.len() as f64 / (wall_ms / 1e3).max(1e-12),
                frames,
                busy_ms,
                resort: resort_delta(st.session.resort_stats(), resort0),
                cull: st.session.cull_stats().delta_since(cull0),
                shares_index,
            });
        }
        ServeReport {
            streams,
            wall_ms,
            total_frames,
            aggregate_fps: total_frames as f64 / (wall_ms / 1e3).max(1e-12),
            index_sharers,
            indexed_streams,
        }
    }

    /// Picks the next stream to dispatch among the ready ones (not busy,
    /// frames remaining), or `None`.
    fn pick(&mut self, busy: &[bool], done: &[usize]) -> Option<usize> {
        let ready: Vec<usize> = (0..self.streams.len())
            .filter(|&i| !busy[i] && done[i] < self.streams[i].frames)
            .collect();
        if ready.is_empty() {
            return None;
        }
        match self.policy {
            SchedulePolicy::OldestFirst => {
                // Fewest completed frames first; ties rotate round-robin
                // from the cursor so equal streams are served fairly.
                let oldest = ready.iter().map(|&i| done[i]).min().expect("non-empty");
                let n = self.streams.len();
                let sid = (0..n)
                    .map(|k| (self.rr_next + k) % n)
                    .find(|&i| !busy[i] && done[i] < self.streams[i].frames && done[i] == oldest)
                    .expect("some ready stream has the oldest frame");
                self.rr_next = (sid + 1) % n;
                Some(sid)
            }
            SchedulePolicy::Seeded(seed) => {
                // SplitMix64 step over the running state (seeded once).
                if self.rng == 0 {
                    self.rng = seed | 1;
                }
                self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = self.rng;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^= z >> 31;
                Some(ready[(z % ready.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsplat::camera::CameraPath;
    use gsplat::scene::EVALUATED_SCENES;

    fn shared_scene() -> SharedScene {
        SharedScene::new(EVALUATED_SCENES[4].generate_scaled(0.03))
    }

    fn orbit_cfg(shared: &SharedScene, phase: f32, frames: usize) -> SequenceConfig {
        let s = shared.scene();
        SequenceConfig::new(
            CameraPath::orbit(s.center, s.view_radius, 1.0 + phase, 0.03),
            frames,
            64,
            48,
        )
        .with_index()
    }

    #[test]
    fn server_serves_every_stream_its_full_budget() {
        let shared = shared_scene();
        let mut server = Server::new(shared, 2);
        for k in 0..3 {
            let cfg = orbit_cfg(server.shared(), k as f32 * 0.2, 2 + k);
            server.add_stream(StreamSpec::vrpipe(
                format!("s{k}"),
                cfg,
                GpuConfig::default(),
                PipelineVariant::HetQm,
            ));
        }
        let report = server.run();
        assert_eq!(report.total_frames, 2 + 3 + 4);
        for (k, s) in report.streams.iter().enumerate() {
            assert_eq!(s.frames.len(), 2 + k, "{}", s.name);
            assert!(s.frames.iter().all(|f| f.is_ok()));
            assert!(s.shares_index);
        }
        assert_eq!(report.index_sharers, 3);
        assert_eq!(report.indexed_streams, 3);
        assert!((report.index_share() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_zero_frame_servers_terminate() {
        let mut server: Server<usize> = Server::new(shared_scene(), 1);
        let report = server.run();
        assert_eq!(report.total_frames, 0);
        let shared = shared_scene();
        let cfg = SequenceConfig::new(
            CameraPath::orbit(shared.scene().center, 1.0, 1.0, 0.1),
            0,
            32,
            32,
        );
        let mut server = Server::new(shared, 2);
        server.add_stream(StreamSpec::new("empty", cfg, |f| f.splats.len()));
        let report = server.run();
        assert_eq!(report.total_frames, 0);
        assert_eq!(report.streams[0].frames.len(), 0);
    }

    #[test]
    fn oldest_first_never_lets_a_stream_fall_behind() {
        // One-worker pool → dispatch order is fully policy-driven; record
        // the service order and check the lag bound.
        let shared = shared_scene();
        let mut server = Server::new(shared, 1);
        let log = Arc::new(Mutex::new(Vec::new()));
        for k in 0..3usize {
            let cfg = SequenceConfig::new(
                CameraPath::orbit(server.shared().scene().center, 2.0, 1.0, 0.05),
                4,
                32,
                24,
            );
            let log = Arc::clone(&log);
            server.add_stream(StreamSpec::new(format!("s{k}"), cfg, move |f| {
                log.lock().unwrap().push((k, f.index));
                f.index
            }));
        }
        server.run();
        let log = log.lock().unwrap();
        assert_eq!(log.len(), 12);
        // After every prefix, completed-frame counts differ by at most 1.
        let mut counts = [0usize; 3];
        for &(k, _) in log.iter() {
            counts[k] += 1;
            let lo = counts.iter().min().unwrap();
            let hi = counts.iter().max().unwrap();
            assert!(hi - lo <= 1, "unfair schedule: {counts:?}");
        }
    }

    /// A panicking backend must terminate the run with a propagated
    /// failure — never strand the scheduler waiting on a completion that
    /// will not come (the completion guard + the pool's panic isolation).
    #[test]
    fn panicking_stream_fails_loudly_instead_of_hanging() {
        for threads in [1usize, 2] {
            let shared = shared_scene();
            let cfg = SequenceConfig::new(
                CameraPath::orbit(shared.scene().center, 2.0, 1.0, 0.05),
                3,
                32,
                24,
            );
            let mut server = Server::new(shared, threads);
            server.add_stream(StreamSpec::new("boom", cfg, |_| -> usize {
                panic!("backend failure (expected in this test)")
            }));
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| server.run()));
            assert!(outcome.is_err(), "threads={threads}: panic was swallowed");
        }
    }

    #[test]
    fn rerun_replays_warm_but_bit_exact() {
        let shared = shared_scene();
        let mut server = Server::new(shared, 1);
        let cfg = orbit_cfg(server.shared(), 0.0, 3);
        server.add_stream(StreamSpec::vrpipe(
            "s0",
            cfg,
            GpuConfig::default(),
            PipelineVariant::Het,
        ));
        let a = server.run();
        let b = server.run();
        let stats = |r: &ServeReport<Result<SequenceFrameRecord, DrawError>>| {
            r.streams[0]
                .frames
                .iter()
                .map(|f| f.as_ref().unwrap().stats.clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(stats(&a), stats(&b));
        // Counters are per-run (baselined), not session-lifetime: each
        // report covers exactly its own three frames.
        assert_eq!(a.streams[0].resort.frames, 3);
        assert_eq!(b.streams[0].resort.frames, 3);
        assert_eq!(a.streams[0].cull.frames, 3);
        assert_eq!(b.streams[0].cull.frames, 3);
    }
}
