//! Multi-session serving: N concurrent coherent streams over one shared
//! scene — the paper's deployment shape (many head-tracked viewers of the
//! same world) scaled past a single [`Session`] — now as a long-lived,
//! fault-tolerant service.
//!
//! A [`Server`] owns one [`SharedScene`] (scene + `Arc<SceneIndex>`, built
//! once), a set of streams (each its own [`CameraPath`] via
//! [`SequenceConfig`], resolution, backend and per-stream [`Session`]),
//! and a persistent [`WorkerPool`] with a run-to-completion task queue.
//! The scheduler dispatches **ready frames** — a stream is ready when it
//! is `Running`, has frames left and none in flight — across the pool
//! under the configured [`SchedulePolicy`].
//!
//! **Stream lifecycle.** Every stream walks the state machine
//! `Admitted → Running → {Completed, Evicted(reason), Failed(reason)}`
//! ([`StreamPhase`]). Streams attach and detach mid-flight
//! ([`Server::attach`] / [`Server::detach`] while idle, a cloneable
//! [`ServerHandle`] from anywhere — including from inside a running
//! stream's backend); admission is controlled against a capacity budget
//! ([`Server::with_admission`]): [`AdmissionPolicy::Queue`] parks excess
//! streams in `Admitted` until capacity frees, [`AdmissionPolicy::Reject`]
//! refuses them at the door ([`AttachOutcome::Rejected`] hands the spec
//! back).
//!
//! **Deadlines, EDF, watchdog.** A stream with a frame-rate target
//! ([`StreamSpec::with_deadline_ms`] / [`StreamSpec::with_target_fps`])
//! gives frame *i* the deadline `started + (i+1)·period`.
//! [`SchedulePolicy::Deadline`] serves ready streams
//! earliest-deadline-first. A watchdog evicts a stream whose in-flight
//! frame has not completed within `k × period` ([`Server::with_watchdog`])
//! — mid-flight when the pool is threaded, or on (late) completion when a
//! serial pool ran the frame inline, so both pool shapes converge on the
//! same [`EvictReason::Stalled`] report. Streams that opted into
//! [`StreamSpec::with_frame_dropping`] shed frames that are already a
//! full period past their deadline before they start: dropped frames are
//! *recorded* (`frames_dropped`, the `produced` index list), never
//! silently rendered differently.
//!
//! **Failure containment.** A backend returning a *transient*
//! [`DrawError`] ([`DrawError::is_transient`]) is retried with bounded
//! exponential backoff and deterministic seeded jitter ([`RetryPolicy`])
//! before the stream is marked [`StreamPhase::Failed`]; a panicking
//! backend is caught at the task boundary (the pool's panic isolation
//! plus [`gsplat::par::panic_message`] carry the payload back) and
//! surfaces as [`StreamFault::Panicked`] on *that stream only* — the
//! server keeps serving the rest. Deterministic chaos comes from the
//! [`faults`] module: a seeded [`faults::FaultPlan`] injects
//! Error/Panic/Stall/Transient faults at the backend seam, driving
//! `tests/serve_faults.rs`.
//!
//! **Bit-exactness under interleaving and faults.** Every *produced*
//! frame of every stream is bit-exact with running that stream alone in a
//! solo [`Session`], for any pool size, any service order, and any fault
//! plan targeting *other* streams, because the scheduler moves only
//! *whole frames* and every piece of mutable state a frame touches is
//! owned by exactly one stream: the sorter warm start, the
//! [`gsplat::index::CullState`] (classification + covariance cache) and
//! the backend's targets all live in that stream's session, each stream's
//! frames run in order with at most one in flight, and the shared scene
//! and [`SceneIndex`] are immutable. Faults are injected *before* the
//! frame renders, so a faulted attempt never half-mutates session state;
//! dropped frames are never rendered at all, and the warm-start/cull
//! machinery is bit-exact regardless of which frames preceded (enforced
//! by `tests/serve.rs`, the scheduling-shuffle property test and the
//! chaos suite). Rewind after an eviction or failure calls
//! [`Session::invalidate_temporal`], so a rerun is bit-exact from
//! frame 0.
//!
//! **Hot reload.** [`Server::reload_scene`] (idle) and
//! [`ServerHandle::reload_scene`] (mid-flight, from anywhere) swap the
//! server's [`SharedScene`] for one decoded from a [`SceneSource`] —
//! in-memory, raw bytes, or a `.gspa` file validated by
//! [`gsplat::asset`]. The swap is **all-or-nothing under an epoch
//! bump**: decoding and validation happen *before* anything is touched,
//! so a corrupt source returns a typed
//! [`AssetError`] and leaves the old scene,
//! every session and every in-flight frame exactly as they were — the
//! rollback is the absence of any mutation, which keeps attached streams
//! provably bit-exact with their solo sessions
//! (`tests/asset_faults.rs`). On success the scene epoch bumps and each
//! stream re-binds *lazily* at its next dispatched frame (temporal state
//! invalidated, shared index re-adopted) inside its own state lock, so a
//! busy stream's in-flight frame still completes against the scene `Arc`
//! it captured. A reload whose fingerprint equals the current scene's is
//! recognised as a no-op: the existing allocations (and every session's
//! warm state) are kept, so frames remain bit-exact across the swap.
//!
//! **Cross-stream batched preprocessing** (opt-in,
//! [`Server::with_batching`]). Viewers of one shared world are often
//! pure translations of each other — stereo eye pairs by construction,
//! co-moving spectators by choice. When batching is enabled the
//! scheduler groups ready frames by translation-bound camera key before
//! dispatch: the picked leader's [`Camera::group_key`] filters
//! candidates in O(M), [`Camera::is_translation_of`] confirms each
//! member bit-for-bit, and stereo eye pairs always batch (an even-frame
//! stereo stream contributes both eyes to one round). A ≥2-member round
//! runs as **one** pool task over one shared
//! [`BatchCullState`]: one widened cell-classification pass and one
//! cached `W·Σ·Wᵀ` replay serve every member, then each member renders
//! its own frame through [`Session::render_frame_batched`] /
//! [`Session::render_frame_vrpipe_batched`] with its own fault seam,
//! retry loop, panic containment and completion message. Emitted splat
//! streams are pure functions of per-Gaussian outcomes — widened
//! verdicts only migrate toward `Boundary`, never flip emission — so
//! every batched frame is bit-exact with its solo session, and a
//! faulting member never perturbs its batch-mates' bits (a partial
//! covariance-cache write is a pure function of the leader orientation,
//! identical no matter which member computed it). Unprovable deltas
//! (and non-indexed streams) fall back to the exact per-stream dispatch
//! path. [`ServeReport::batch`] records the round/occupancy accounting.
//!
//! [`Camera::group_key`]: gsplat::camera::Camera::group_key
//! [`Camera::is_translation_of`]: gsplat::camera::Camera::is_translation_of
//! [`CameraPath`]: gsplat::camera::CameraPath
//! [`SceneIndex`]: gsplat::index::SceneIndex

pub mod degrade;
pub mod faults;

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use gsplat::asset::{self, AssetError, LoadPolicy};

use gpu_sim::config::GpuConfig;
use gsplat::batch::BatchCullState;
use gsplat::camera::{Camera, CameraPath};
use gsplat::index::CullStats;
use gsplat::par::{panic_message, WorkerPool};
use gsplat::sort::ResortStats;
use gsplat::ThreadPolicy;

use crate::pipeline::DrawError;
use crate::sequence::{FrameInput, SequenceConfig, SequenceFrameRecord, Session, SharedScene};
use crate::variant::PipelineVariant;
use degrade::QualityLadder;
use faults::{FaultAction, FaultInjector};
use gsplat::stream::FragmentKernel;

/// Boxed per-frame backend of one stream.
type RenderFn<R> = Box<dyn FnMut(FrameInput<'_>) -> R + Send>;
/// Boxed fallible per-frame backend (errors feed the retry machinery).
type TryRenderFn<R> = Box<dyn FnMut(FrameInput<'_>) -> Result<R, DrawError> + Send>;

/// Field-wise `now - earlier` over the session-lifetime resort counters,
/// so a [`StreamReport`] covers exactly one run.
fn resort_delta(now: ResortStats, earlier: &ResortStats) -> ResortStats {
    ResortStats {
        frames: now.frames - earlier.frames,
        repaired: now.repaired - earlier.repaired,
        radix_fallbacks: now.radix_fallbacks - earlier.radix_fallbacks,
        repair_shifts: now.repair_shifts - earlier.repair_shifts,
    }
}

/// SplitMix64 finalizer, the repo's standard bit mixer.
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Nearest-rank percentile over an ascending-sorted slice (0.0 on empty).
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// How one stream turns a prepared frame into its output.
enum Backend<R> {
    /// A caller-supplied closure over the preprocessed [`FrameInput`].
    Infallible(RenderFn<R>),
    /// A caller-supplied closure that can fail; transient [`DrawError`]s
    /// go through the stream's [`RetryPolicy`] before the stream is
    /// marked [`StreamPhase::Failed`].
    Fallible(TryRenderFn<R>),
    /// The built-in simulated-hardware path, routed through
    /// [`Session::render_frame_vrpipe`] so it reuses the session-owned
    /// [`crate::pipeline::DrawScratch`] and persistent render targets.
    /// `wrap` converts the record into the server's `R` (the identity —
    /// this variant is only constructible when the types line up).
    VrPipe {
        gpu: GpuConfig,
        variant: PipelineVariant,
        wrap: fn(SequenceFrameRecord) -> R,
    },
}

/// How the scheduler picks among ready streams.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub enum SchedulePolicy {
    /// Serve the ready stream with the fewest started frames (no stream
    /// falls behind); ties rotate round-robin from the last dispatch.
    /// This is the default.
    #[default]
    OldestFirst,
    /// Pick a ready stream pseudo-randomly from the seed — a test policy
    /// that shuffles service order to *prove* scheduling cannot change
    /// output bits (it exercises interleavings the default never would).
    Seeded(u64),
    /// Earliest-deadline-first: among ready streams with a deadline, pick
    /// the one whose next frame is due soonest; streams without a
    /// deadline rank after every deadline stream and are served
    /// oldest-first among themselves.
    Deadline,
}

/// What happens when a stream is attached while the server is at its
/// admission capacity (see [`Server::with_admission`]).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Admit the stream but park it in [`StreamPhase::Admitted`] until a
    /// running stream reaches a terminal phase and frees capacity. This
    /// is the default.
    #[default]
    Queue,
    /// Refuse the stream at the door: [`Server::attach`] returns
    /// [`AttachOutcome::Rejected`] with the spec handed back. (A
    /// [`ServerHandle::attach`] under this policy silently drops the
    /// spec — the handle is fire-and-forget.)
    Reject,
}

/// Bounded exponential backoff with deterministic seeded jitter, applied
/// between retries of a transient [`DrawError`] (see
/// [`DrawError::is_transient`]). Delays are
/// `min(base·2^attempt, max) · (0.5 + 0.5·jitter)` where `jitter ∈ [0,1)`
/// is a pure hash of `(seed, stream, frame, attempt)` — the same fault
/// always backs off identically, so chaos runs are replayable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Retries before the stream is marked failed (0 = fail on first
    /// error).
    pub max_retries: u32,
    /// First-retry delay, ms.
    pub base_delay_ms: f64,
    /// Backoff ceiling, ms.
    pub max_delay_ms: f64,
    /// Jitter seed.
    pub seed: u64,
}

impl Default for RetryPolicy {
    /// Three retries, 0.25 ms → 4 ms backoff — generous enough to clear
    /// injected transients, short enough for tests.
    fn default() -> Self {
        Self {
            max_retries: 3,
            base_delay_ms: 0.25,
            max_delay_ms: 4.0,
            seed: 0x5EED_0BAC,
        }
    }
}

impl RetryPolicy {
    /// No retries: the first backend error fails the stream.
    pub fn none() -> Self {
        Self {
            max_retries: 0,
            ..Self::default()
        }
    }

    /// The deterministic delay before retry `attempt` (0-based) of
    /// `frame` on stream `stream`, ms.
    pub fn backoff_ms(&self, stream: usize, frame: usize, attempt: u32) -> f64 {
        let exp = (self.base_delay_ms * (1u64 << attempt.min(20)) as f64).min(self.max_delay_ms);
        let h = mix64(
            self.seed
                ^ (stream as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ (frame as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9)
                ^ ((attempt as u64 + 1).wrapping_mul(0x94D0_49BB_1331_11EB)),
        );
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
        exp * (0.5 + 0.5 * unit)
    }
}

/// Why a stream was evicted (the scheduler gave up on it; its session
/// state is invalidated at rewind so a rerun is bit-exact from frame 0).
#[derive(Debug, Clone, PartialEq)]
pub enum EvictReason {
    /// The in-flight frame did not complete within the stall budget
    /// (`k × period`, see [`Server::with_watchdog`]).
    Stalled {
        /// Frame that was in flight when the watchdog fired.
        frame: usize,
        /// How long the scheduler had waited (or the frame took), ms.
        waited_ms: f64,
        /// The stall budget that was exceeded, ms.
        budget_ms: f64,
    },
    /// The stream was detached mid-run ([`Server::detach`] /
    /// [`ServerHandle::detach`]).
    Detached,
}

impl std::fmt::Display for EvictReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvictReason::Stalled {
                frame,
                waited_ms,
                budget_ms,
            } => write!(
                f,
                "stalled at frame {frame} ({waited_ms:.1} ms > budget {budget_ms:.1} ms)"
            ),
            EvictReason::Detached => write!(f, "detached"),
        }
    }
}

/// Why a stream failed (its own backend misbehaved; other streams are
/// untouched).
#[derive(Debug, Clone, PartialEq)]
pub enum StreamFault {
    /// The backend kept returning [`DrawError`] after `retries` retries
    /// (transient errors retry up to [`RetryPolicy::max_retries`];
    /// permanent ones fail immediately with the retry count so far).
    Render {
        /// The final error.
        error: DrawError,
        /// Retries performed before giving up.
        retries: u32,
    },
    /// The backend panicked; the payload was caught at the task boundary.
    Panicked {
        /// The panic payload, stringified.
        message: String,
        /// Frame whose attempt panicked.
        frame: usize,
    },
}

impl std::fmt::Display for StreamFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamFault::Render { error, retries } => {
                write!(f, "render error after {retries} retries: {error}")
            }
            StreamFault::Panicked { message, frame } => {
                write!(f, "backend panicked at frame {frame}: {message}")
            }
        }
    }
}

/// One stream's position in the lifecycle state machine
/// `Admitted → Running → {Completed, Evicted, Failed}`.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamPhase {
    /// Registered, waiting for admission capacity.
    Admitted,
    /// Being served.
    Running,
    /// Every frame of the budget was produced or (opted-in) dropped.
    Completed,
    /// The scheduler gave up on the stream.
    Evicted(EvictReason),
    /// The stream's own backend failed.
    Failed(StreamFault),
}

impl StreamPhase {
    /// `true` once the stream can make no further progress this run.
    pub fn is_terminal(&self) -> bool {
        !matches!(self, StreamPhase::Admitted | StreamPhase::Running)
    }
}

/// One stream's definition: a name, its sequence (camera path, frame
/// budget, viewport, temporal/indexed knobs), the per-frame backend, and
/// the serving knobs (deadline, frame dropping, retry policy, fault
/// injection).
pub struct StreamSpec<R> {
    name: String,
    cfg: SequenceConfig,
    build_stream: bool,
    backend: Backend<R>,
    deadline_ms: Option<f64>,
    drop_late: bool,
    retry: RetryPolicy,
    injector: FaultInjector,
    ladder: QualityLadder,
    priority: i32,
}

impl<R> std::fmt::Debug for StreamSpec<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamSpec")
            .field("name", &self.name)
            .field("cfg", &self.cfg)
            .field("deadline_ms", &self.deadline_ms)
            .field("drop_late", &self.drop_late)
            .field("ladder", &self.ladder.len())
            .field("priority", &self.priority)
            .finish_non_exhaustive()
    }
}

impl<R: Send + 'static> StreamSpec<R> {
    fn with_backend(name: impl Into<String>, cfg: SequenceConfig, backend: Backend<R>) -> Self {
        Self {
            name: name.into(),
            cfg,
            build_stream: false,
            backend,
            deadline_ms: None,
            drop_late: false,
            retry: RetryPolicy::default(),
            injector: FaultInjector::none(),
            ladder: QualityLadder::new(),
            priority: 0,
        }
    }

    /// A stream rendering `cfg` through `render` — any backend that can
    /// consume a [`FrameInput`] (the three `swrender` backends, the
    /// in-shader workload model, or arbitrary instrumentation). State the
    /// backend needs across frames lives inside the closure.
    ///
    /// Configure the backend's own renderer **serially** (e.g.
    /// `SwConfig { threads: 1, .. }`): served parallelism comes from
    /// concurrent streams sharing the pool, and a backend that fork-joins
    /// over the whole host inside its frame oversubscribes it M-fold
    /// (results are bit-identical either way — only wall time suffers).
    pub fn new(
        name: impl Into<String>,
        cfg: SequenceConfig,
        render: impl FnMut(FrameInput<'_>) -> R + Send + 'static,
    ) -> Self {
        Self::with_backend(name, cfg, Backend::Infallible(Box::new(render)))
    }

    /// Like [`StreamSpec::new`] but the backend can fail: transient
    /// [`DrawError`]s go through the stream's [`RetryPolicy`] before the
    /// stream is marked [`StreamPhase::Failed`]; permanent ones fail it
    /// immediately.
    pub fn fallible(
        name: impl Into<String>,
        cfg: SequenceConfig,
        render: impl FnMut(FrameInput<'_>) -> Result<R, DrawError> + Send + 'static,
    ) -> Self {
        Self::with_backend(name, cfg, Backend::Fallible(Box::new(render)))
    }

    /// Also maintain the SoA [`gsplat::stream::SplatStream`] mirror each
    /// frame (for backends consuming streams directly, e.g.
    /// `CudaLikeRenderer::render_prepared`).
    pub fn with_stream(mut self) -> Self {
        self.build_stream = true;
        self
    }

    /// Sets a per-frame deadline: frame *i* is due `(i+1)·period_ms`
    /// after the stream starts running. Enables the watchdog and makes
    /// the stream eligible for [`SchedulePolicy::Deadline`].
    pub fn with_deadline_ms(mut self, period_ms: f64) -> Self {
        self.deadline_ms = (period_ms > 0.0).then_some(period_ms);
        self
    }

    /// [`StreamSpec::with_deadline_ms`] expressed as a frame-rate target.
    pub fn with_target_fps(self, fps: f64) -> Self {
        if fps > 0.0 {
            self.with_deadline_ms(1e3 / fps)
        } else {
            self
        }
    }

    /// Opt into graceful degradation: frames that are already a full
    /// period past their deadline before they start are *dropped* —
    /// recorded in `frames_dropped` and missing from `produced`, never
    /// silently rendered differently. Requires a deadline.
    pub fn with_frame_dropping(mut self) -> Self {
        self.drop_late = true;
        self
    }

    /// Replaces the retry policy (default [`RetryPolicy::default`]).
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Attaches a fault injector (see [`faults`]) at the backend seam —
    /// consulted once per render attempt, before the real backend runs.
    pub fn with_faults(mut self, injector: FaultInjector) -> Self {
        self.injector = injector;
        self
    }

    /// Attaches a quality ladder (see [`degrade`]): under sustained
    /// deadline misses the scheduler steps the stream down to the
    /// ladder's cheaper derived configurations (and back up once it runs
    /// on time again), instead of dropping frames or letting the watchdog
    /// evict. Every produced frame's rung is recorded in
    /// [`StreamReport::rungs`]; frames at rung `r` are bit-exact with a
    /// solo session configured at rung `r`.
    pub fn with_ladder(mut self, ladder: QualityLadder) -> Self {
        self.ladder = ladder;
        self
    }

    /// Sets the stream's brownout priority (default 0). Under server-level
    /// overload ([`Server::with_brownout`]) *lower*-priority streams are
    /// stepped down their ladders first; higher values are degraded last.
    pub fn with_priority(mut self, priority: i32) -> Self {
        self.priority = priority;
        self
    }

    /// The stream's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The stream's sequence configuration.
    pub fn cfg(&self) -> &SequenceConfig {
        &self.cfg
    }

    /// The per-frame deadline, if set.
    pub fn deadline_ms(&self) -> Option<f64> {
        self.deadline_ms
    }

    /// The stream's quality ladder (a one-rung ladder = no degradation
    /// headroom).
    pub fn ladder(&self) -> &QualityLadder {
        &self.ladder
    }

    /// The stream's brownout priority.
    pub fn priority(&self) -> i32 {
        self.priority
    }
}

impl StreamSpec<SequenceFrameRecord> {
    /// The built-in simulated-hardware backend: every frame runs through
    /// [`Session::render_frame_vrpipe`], reusing the per-stream session's
    /// own [`crate::pipeline::DrawScratch`] and persistent render targets
    /// — the serve-side equivalent of [`Session::run_vrpipe`], one
    /// implementation for both. Draw errors feed the stream's
    /// [`RetryPolicy`] / [`StreamPhase::Failed`] machinery instead of
    /// leaking into the output type.
    ///
    /// The draw's host threading is pinned serial (`gpu.threads = 1`,
    /// bit-identical results by the determinism contract): served
    /// parallelism comes from concurrent streams sharing the pool, not
    /// from each frame fork-joining over the whole host.
    pub fn vrpipe(
        name: impl Into<String>,
        cfg: SequenceConfig,
        gpu: GpuConfig,
        variant: PipelineVariant,
    ) -> Self {
        Self::with_backend(
            name,
            cfg,
            Backend::VrPipe {
                gpu: GpuConfig { threads: 1, ..gpu },
                variant,
                wrap: std::convert::identity,
            },
        )
    }
}

/// Mutable per-stream state, touched by at most one worker at a time (the
/// scheduler never has two frames of one stream in flight).
struct StreamState<R> {
    cfg: SequenceConfig,
    /// Per-rung derived configurations, rung order (len ≥ 1; index 0 is
    /// the base `cfg` tagged rung 0). Precomputed at registration so rung
    /// switches never derive anything inside the frame task.
    rung_cfgs: Vec<SequenceConfig>,
    /// Per-rung fragment-kernel overrides (`None` = keep the backend's).
    rung_kernels: Vec<Option<FragmentKernel>>,
    /// Per-rung render-cost factors, scaling [`FaultKind::Load`]
    /// injections at the backend seam.
    cost_scales: Vec<f64>,
    session: Session,
    backend: Backend<R>,
    injector: FaultInjector,
    retry: RetryPolicy,
}

/// Scheduler-owned bookkeeping of one stream — everything the run loop
/// mutates without touching the stream's mutex (which a stalled zombie
/// task may hold).
struct Sched<R> {
    phase: StreamPhase,
    busy: bool,
    /// Frames of this stream currently in flight (0 or 1 on the solo
    /// path; a stereo self-pair dispatches 2). `busy` is maintained as
    /// `in_flight_frames > 0`.
    in_flight_frames: usize,
    /// Frames of this stream delivered by ≥2-member batch rounds.
    frames_batched: usize,
    /// Next frame index to start (dispatch and drop both advance it).
    cursor: usize,
    /// `(frame, output)` in completion order (= frame order: one in
    /// flight, in-order dispatch).
    outputs: Vec<(usize, R)>,
    /// Frame indices shed by graceful degradation.
    dropped: Vec<usize>,
    /// Accepted per-frame latencies, ms, in completion order.
    latencies: Vec<f64>,
    deadline_misses: usize,
    retries: u32,
    busy_ms: f64,
    /// Dispatch epoch: bumped on eviction/detach so completions from
    /// zombie tasks are recognised and discarded.
    generation: u32,
    /// When the stream entered `Running` (deadline origin).
    started_at: Option<Instant>,
    /// When the in-flight frame was dispatched (watchdog origin).
    dispatched_at: Option<Instant>,
    /// Current quality-ladder rung (0 = full quality). Only the scheduler
    /// writes it, and only while no frame is in flight for the stream —
    /// rung switches happen *between* dispatches, never mid-frame.
    rung: usize,
    /// Rung of each accepted output, parallel to `outputs`.
    rungs: Vec<u8>,
    /// Consecutive deadline misses at the current rung (hysteresis).
    consec_misses: u32,
    /// Consecutive on-time frames at the current rung (hysteresis).
    consec_hits: u32,
    /// Ladder step-downs this run (hysteresis + brownout).
    steps_down: usize,
    /// Ladder step-ups this run.
    steps_up: usize,
    /// Step-downs forced by the server-level brownout detector.
    brownout_steps: usize,
}

impl<R> Default for Sched<R> {
    fn default() -> Self {
        Self {
            phase: StreamPhase::Admitted,
            busy: false,
            in_flight_frames: 0,
            frames_batched: 0,
            cursor: 0,
            outputs: Vec::new(),
            dropped: Vec::new(),
            latencies: Vec::new(),
            deadline_misses: 0,
            retries: 0,
            busy_ms: 0.0,
            generation: 0,
            started_at: None,
            dispatched_at: None,
            rung: 0,
            rungs: Vec::new(),
            consec_misses: 0,
            consec_hits: 0,
            steps_down: 0,
            steps_up: 0,
            brownout_steps: 0,
        }
    }
}

/// One registered stream: immutable identity + scheduler bookkeeping +
/// the shared mutable state handed to worker tasks.
struct StreamEntry<R> {
    /// Stable id (monotonic across attach/detach; [`Server::add_stream`]
    /// returns it).
    id: usize,
    name: String,
    budget: usize,
    indexed: bool,
    deadline_ms: Option<f64>,
    drop_late: bool,
    /// Quality-ladder depth (1 = no degradation headroom).
    rung_count: usize,
    /// Hysteresis: consecutive misses before stepping down.
    down_after: u32,
    /// Hysteresis: consecutive on-time frames before stepping up.
    up_after: u32,
    /// Brownout priority — lower values are degraded first.
    priority: i32,
    /// Marked for removal at the end of the current run.
    detached: bool,
    /// The session's temporal state must be invalidated before the next
    /// run (set when a run ends in a non-`Completed` phase).
    needs_reset: bool,
    /// Scheduler-side clone of the per-rung derived configurations
    /// (always non-empty; index 0 is the base). Batch formation computes
    /// candidate cameras from these without touching the stream's mutex
    /// — the expression is the one [`Session::render_frame_batched`]
    /// evaluates, so the bits match and membership proofs hold.
    cam_cfgs: Vec<SequenceConfig>,
    /// Session-lifetime counter baseline at the start of the current run.
    baseline: (ResortStats, CullStats),
    /// The server scene epoch this stream's session is bound to; when it
    /// trails the server's, the next dispatched frame re-binds (temporal
    /// invalidation + shared-index adoption) inside the stream's lock.
    scene_epoch: u64,
    sched: Sched<R>,
    state: Arc<Mutex<StreamState<R>>>,
}

/// Where a [`Server::reload_scene`] gets its replacement scene from.
///
/// The byte and path variants route through [`gsplat::asset`]'s
/// validated loader under the given [`LoadPolicy`]; an already-built
/// [`SharedScene`] is accepted as-is (it can only exist with a computed
/// fingerprint).
#[derive(Debug)]
pub enum SceneSource {
    /// An already-validated in-memory scene.
    Shared(Box<SharedScene>),
    /// An encoded asset, decoded and validated at the swap point.
    Bytes(Vec<u8>, LoadPolicy),
    /// A `.gspa` file, read and validated at the swap point.
    Path(PathBuf, LoadPolicy),
}

/// What a successful [`Server::reload_scene`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReloadOutcome {
    /// The scene epoch after this reload (bumps on every successful
    /// reload, changed or not).
    pub epoch: u64,
    /// Fingerprint of the scene now being served.
    pub fingerprint: u64,
    /// `false` when the source's fingerprint matched the current scene:
    /// the old allocations (and all warm per-stream state) were kept.
    pub changed: bool,
    /// Gaussians the loader quarantined (0 for [`SceneSource::Shared`]
    /// or [`LoadPolicy::Strict`] sources).
    pub quarantined: usize,
}

/// Commands a [`ServerHandle`] (or the idle server) feeds the scheduler.
/// The spec is boxed so the enum (and [`Msg`], which carries it) stays
/// small next to its other variants.
enum Command<R> {
    Attach { id: usize, spec: Box<StreamSpec<R>> },
    Detach { id: usize },
    Reload { source: SceneSource },
}

/// Everything that flows to the scheduler over its one channel: frame
/// completions and lifecycle commands share it, so a command sent before
/// a completion is always observed first (FIFO).
enum Msg<R> {
    Done {
        id: usize,
        generation: u32,
        frame: usize,
        /// Quality-ladder rung the frame rendered at (rides the
        /// completion so zombie discards carry their rung away with
        /// them).
        rung: u8,
        latency_ms: f64,
        retries: u32,
        /// `true` when the frame was served by a ≥2-member batch round.
        batched: bool,
        result: Result<R, StreamFault>,
    },
    Cmd(Command<R>),
}

/// Outcome of [`Server::attach`].
#[derive(Debug)]
pub enum AttachOutcome<R> {
    /// The stream was registered under `id`.
    Admitted {
        /// The stream's stable id.
        id: usize,
    },
    /// [`AdmissionPolicy::Reject`]: the server is at capacity; the spec
    /// is handed back untouched (boxed, so the enum stays small).
    Rejected {
        /// The refused spec.
        spec: Box<StreamSpec<R>>,
        /// The capacity that was full.
        capacity: usize,
    },
}

impl<R> AttachOutcome<R> {
    /// The admitted id, or `None` when rejected.
    pub fn id(&self) -> Option<usize> {
        match self {
            AttachOutcome::Admitted { id } => Some(*id),
            AttachOutcome::Rejected { .. } => None,
        }
    }
}

/// A cloneable remote control for a [`Server`]: attach and detach streams
/// from anywhere — another thread, or a running stream's own backend —
/// while [`Server::run`] is in flight. Commands ride the scheduler's
/// completion channel, so one sent from inside a frame task is processed
/// before that frame's own completion.
pub struct ServerHandle<R> {
    tx: mpsc::Sender<Msg<R>>,
    next_id: Arc<AtomicUsize>,
}

impl<R> Clone for ServerHandle<R> {
    fn clone(&self) -> Self {
        Self {
            tx: self.tx.clone(),
            next_id: Arc::clone(&self.next_id),
        }
    }
}

impl<R: Send + 'static> ServerHandle<R> {
    /// Queues `spec` for attachment and returns its id immediately. The
    /// stream is admitted when the scheduler processes the command
    /// (silently dropped under [`AdmissionPolicy::Reject`] at capacity —
    /// use [`Server::attach`] for a synchronous verdict).
    pub fn attach(&self, spec: StreamSpec<R>) -> usize {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let _ = self.tx.send(Msg::Cmd(Command::Attach {
            id,
            spec: Box::new(spec),
        }));
        id
    }

    /// Queues detachment of stream `id`: it is reported as
    /// [`EvictReason::Detached`] for the current run and removed from the
    /// server afterwards.
    pub fn detach(&self, id: usize) {
        let _ = self.tx.send(Msg::Cmd(Command::Detach { id }));
    }

    /// Queues a mid-flight scene reload from `source`. Fire-and-forget:
    /// the outcome (success or typed [`AssetError`]) is recorded in the
    /// run's [`ServeReport::reloads`]. A failed load swaps nothing —
    /// every stream keeps serving the old scene bit-exactly; use
    /// [`Server::reload_scene`] for a synchronous verdict while idle.
    pub fn reload_scene(&self, source: SceneSource) {
        let _ = self.tx.send(Msg::Cmd(Command::Reload { source }));
    }
}

/// Per-stream results and counters of one [`Server::run`].
#[derive(Debug)]
pub struct StreamReport<R> {
    /// The stream's stable id.
    pub id: usize,
    /// Stream name.
    pub name: String,
    /// Where the stream ended the run.
    pub phase: StreamPhase,
    /// Per-frame backend outputs, in frame order (dropped frames are
    /// absent — see `produced`).
    pub frames: Vec<R>,
    /// Frame indices of `frames` (identical to `0..frames.len()` unless
    /// frames were dropped).
    pub produced: Vec<usize>,
    /// Frames shed by graceful degradation (late past their deadline).
    pub frames_dropped: usize,
    /// Produced frames that completed after their deadline.
    pub deadline_misses: usize,
    /// Backend retries performed across the run.
    pub retries: u32,
    /// Median accepted frame latency, ms (0 when nothing was produced).
    pub latency_p50_ms: f64,
    /// 99th-percentile accepted frame latency, ms.
    pub latency_p99_ms: f64,
    /// Wall time spent inside this stream's frame tasks, ms.
    pub busy_ms: f64,
    /// Delivered frame rate over the whole run's wall clock.
    pub fps: f64,
    /// Incremental re-sort counters (warm-start reuse).
    pub resort: ResortStats,
    /// Incremental culling counters (index reuse; zero when not indexed).
    pub cull: CullStats,
    /// `true` when this stream's session holds the [`SharedScene`]'s
    /// `Arc<SceneIndex>` allocation (not a private copy).
    pub shares_index: bool,
    /// Quality-ladder rung of each produced frame, parallel to
    /// `produced`/`frames` (all 0 for streams without a ladder).
    pub rungs: Vec<u8>,
    /// Quality-ladder depth the stream was registered with (1 = no
    /// ladder).
    pub rung_count: usize,
    /// Ladder step-downs during the run (hysteresis + brownout).
    pub rung_steps_down: usize,
    /// Ladder step-ups during the run (recovery).
    pub rung_steps_up: usize,
    /// Step-downs forced by the server-level brownout detector (also
    /// counted in `rung_steps_down`).
    pub brownout_steps: usize,
    /// Produced frames that were served by ≥2-member batch rounds
    /// (0 unless [`Server::with_batching`] is on and the stream's
    /// cameras proved translation-bound with a batch-mate).
    pub frames_batched: usize,
}

impl<R> StreamReport<R> {
    /// Produced frames per rung: `occupancy()[r]` counts the frames
    /// rendered at rung `r`. Always sums to `produced.len()` — the
    /// invariant the bench report's schema check enforces.
    pub fn rung_occupancy(&self) -> Vec<usize> {
        let mut occ = vec![0usize; self.rung_count.max(1)];
        let top = occ.len() - 1;
        for &r in &self.rungs {
            occ[(r as usize).min(top)] += 1;
        }
        occ
    }
}

/// Aggregate results of one [`Server::run`].
#[derive(Debug)]
pub struct ServeReport<R> {
    /// Per-stream reports, in registration order.
    pub streams: Vec<StreamReport<R>>,
    /// Wall time of the whole run, ms.
    pub wall_ms: f64,
    /// Frames delivered across all streams.
    pub total_frames: usize,
    /// Aggregate delivered frame rate (all streams / wall clock).
    pub aggregate_fps: f64,
    /// Streams whose sessions share the scene's one `Arc<SceneIndex>`.
    pub index_sharers: usize,
    /// Streams that requested indexed preprocessing.
    pub indexed_streams: usize,
    /// Outcome of every [`ServerHandle::reload_scene`] processed during
    /// the run, in processing order (failed reloads swap nothing).
    pub reloads: Vec<Result<ReloadOutcome, AssetError>>,
    /// The scene epoch at the end of the run.
    pub scene_epoch: u64,
    /// Batched-preprocessing accounting for the run (all zero when
    /// [`Server::with_batching`] is off).
    pub batch: BatchStats,
}

/// Batch-round accounting of one [`Server::run`] under
/// [`Server::with_batching`]. A *round* is one dispatch by a
/// batch-eligible leader (an indexed stream on a batching server);
/// rounds that found no provable batch-mate fall back to the exact solo
/// dispatch path and are counted in `solo_frames`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Batch-eligible dispatch rounds (batched + fallen-back).
    pub rounds: usize,
    /// Rounds that dispatched ≥2 members as one widened pass.
    pub batched_rounds: usize,
    /// Frames dispatched by ≥2-member rounds.
    pub batched_frames: usize,
    /// Frames dispatched solo by eligible leaders that found no
    /// provable batch-mate (the fallback path).
    pub solo_frames: usize,
    /// Occupancy histogram: `occupancy[i]` counts rounds that
    /// dispatched `i + 1` member frames. The schema invariant
    /// `Σ (i+1)·occupancy[i] == batched_frames + solo_frames` always
    /// holds (the bench report gates on it).
    pub occupancy: Vec<usize>,
}

impl BatchStats {
    /// Fraction of eligible rounds that fell back to the solo path
    /// (0.0 when no eligible round was dispatched).
    pub fn fallback_ratio(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            (self.rounds - self.batched_rounds) as f64 / self.rounds as f64
        }
    }

    /// Frames dispatched through eligible rounds, batched or not.
    pub fn dispatched_frames(&self) -> usize {
        self.batched_frames + self.solo_frames
    }

    /// Mean members per batch-eligible round (1.0 = nothing batched).
    pub fn mean_occupancy(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.dispatched_frames() as f64 / self.rounds as f64
        }
    }
}

impl<R> ServeReport<R> {
    /// Fraction of indexed streams that share the single scene index
    /// allocation (1.0 = every indexed session reuses the shared `Arc`).
    pub fn index_share(&self) -> f64 {
        if self.indexed_streams == 0 {
            0.0
        } else {
            self.index_sharers as f64 / self.indexed_streams as f64
        }
    }

    /// The report of the stream named `name`, if any.
    pub fn stream(&self, name: &str) -> Option<&StreamReport<R>> {
        self.streams.iter().find(|s| s.name == name)
    }

    /// Streams that ended the run in `Completed`.
    pub fn completed(&self) -> usize {
        self.count(|p| matches!(p, StreamPhase::Completed))
    }

    /// Streams that ended the run in `Evicted`.
    pub fn evicted(&self) -> usize {
        self.count(|p| matches!(p, StreamPhase::Evicted(_)))
    }

    /// Streams that ended the run in `Failed`.
    pub fn failed(&self) -> usize {
        self.count(|p| matches!(p, StreamPhase::Failed(_)))
    }

    fn count(&self, f: impl Fn(&StreamPhase) -> bool) -> usize {
        self.streams.iter().filter(|s| f(&s.phase)).count()
    }
}

/// A fault-tolerant multi-stream serving loop: one [`SharedScene`], N
/// per-stream [`Session`]s, one persistent [`WorkerPool`].
///
/// Streams render frames in their own order with at most one frame in
/// flight each; the scheduler fills the pool with ready frames under the
/// configured [`SchedulePolicy`], walks each stream through the
/// [`StreamPhase`] lifecycle, retries transient backend errors, contains
/// panics to the faulting stream, and (for deadline streams) evicts
/// stalls and optionally sheds late frames. Sessions run with a
/// **serial** per-frame thread policy — parallelism comes from concurrent
/// streams sharing the pool, not from each frame fork-joining over the
/// whole host (which would oversubscribe it M-fold; see
/// [`gsplat::par::WorkerPool`]).
///
/// # Examples
///
/// ```
/// use gpu_sim::config::GpuConfig;
/// use gsplat::camera::CameraPath;
/// use gsplat::scene::EVALUATED_SCENES;
/// use vrpipe::{PipelineVariant, SequenceConfig, Server, SharedScene, StreamPhase, StreamSpec};
///
/// let scene = EVALUATED_SCENES[4].generate_scaled(0.04);
/// let shared = SharedScene::new(scene);
/// let mut server = Server::new(shared, 1);
/// for k in 0..2 {
///     let path = CameraPath::orbit(
///         server.shared().scene().center,
///         server.shared().scene().view_radius,
///         1.0 + k as f32 * 0.3,
///         0.02,
///     );
///     server.add_stream(StreamSpec::vrpipe(
///         format!("viewer-{k}"),
///         SequenceConfig::new(path, 3, 64, 48).with_index(),
///         GpuConfig::default(),
///         PipelineVariant::HetQm,
///     ));
/// }
/// let report = server.run();
/// assert_eq!(report.total_frames, 6);
/// assert_eq!(report.index_sharers, 2);
/// assert!(report.streams.iter().all(|s| s.phase == StreamPhase::Completed));
/// ```
pub struct Server<R> {
    shared: Arc<SharedScene>,
    pool: Arc<WorkerPool>,
    policy: SchedulePolicy,
    admission: AdmissionPolicy,
    capacity: Option<usize>,
    /// Stall budget multiplier: a deadline stream is evicted when a frame
    /// takes longer than `watchdog_k × period`.
    watchdog_k: f64,
    /// Server-level brownout threshold, ms of aggregate lateness
    /// (`None` = detector off).
    brownout_ms: Option<f64>,
    /// Cross-stream batched preprocessing ([`Server::with_batching`]).
    batching: bool,
    /// One persistent [`BatchCullState`] per camera group key, so the
    /// cross-round covariance replay survives between rounds and runs
    /// (the leader orientation per key is constant). A `Vec` scan, not a
    /// hash map: lookups are per dispatch round, fleets are small, and
    /// iteration stays deterministic.
    batches: Vec<(u64, Arc<Mutex<BatchCullState>>)>,
    /// Batch-round accounting for the current run (drained into the
    /// report).
    batch: BatchStats,
    streams: Vec<StreamEntry<R>>,
    /// Bumped on every successful reload; streams trailing it re-bind at
    /// their next dispatch.
    scene_epoch: u64,
    /// Reload outcomes accumulated during the current run (drained into
    /// the report).
    reloads: Vec<Result<ReloadOutcome, AssetError>>,
    /// Round-robin cursor for tie-breaking.
    rr_next: usize,
    /// LCG state for [`SchedulePolicy::Seeded`].
    rng: u64,
    tx: mpsc::Sender<Msg<R>>,
    rx: mpsc::Receiver<Msg<R>>,
    next_id: Arc<AtomicUsize>,
}

impl<R> std::fmt::Debug for Server<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("streams", &self.streams.len())
            .field("workers", &self.pool.workers())
            .field("policy", &self.policy)
            .field("admission", &self.admission)
            .field("capacity", &self.capacity)
            .finish()
    }
}

impl<R: Send + 'static> Server<R> {
    /// A server over `shared` with its own pool of `threads` workers
    /// (`0` = the host budget; see [`WorkerPool::new`]).
    pub fn new(shared: SharedScene, threads: usize) -> Self {
        Self::with_pool(Arc::new(shared), Arc::new(WorkerPool::new(threads)))
    }

    /// A server borrowing an existing pool — several servers (or other
    /// subsystems) can share one host-thread budget.
    pub fn with_pool(shared: Arc<SharedScene>, pool: Arc<WorkerPool>) -> Self {
        let (tx, rx) = mpsc::channel();
        Self {
            shared,
            pool,
            policy: SchedulePolicy::default(),
            admission: AdmissionPolicy::default(),
            capacity: None,
            watchdog_k: 4.0,
            brownout_ms: None,
            batching: false,
            batches: Vec::new(),
            batch: BatchStats::default(),
            streams: Vec::new(),
            scene_epoch: 0,
            reloads: Vec::new(),
            rr_next: 0,
            rng: 0,
            tx,
            rx,
            next_id: Arc::new(AtomicUsize::new(0)),
        }
    }

    /// Replaces the scheduling policy (default
    /// [`SchedulePolicy::OldestFirst`]).
    pub fn with_policy(mut self, policy: SchedulePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Caps concurrently running streams at `capacity` (clamped to ≥ 1)
    /// under `policy` (default: unlimited, [`AdmissionPolicy::Queue`]).
    pub fn with_admission(mut self, capacity: usize, policy: AdmissionPolicy) -> Self {
        self.capacity = Some(capacity.max(1));
        self.admission = policy;
        self
    }

    /// Replaces the watchdog stall multiplier (default 4.0): a deadline
    /// stream is evicted when a frame exceeds `k × period`. Streams
    /// without a deadline are never watchdogged.
    pub fn with_watchdog(mut self, k: f64) -> Self {
        self.watchdog_k = k.max(1.0);
        self
    }

    /// Enables cross-stream batched preprocessing: before dispatching a
    /// ready indexed frame, the scheduler gathers every other ready
    /// indexed frame whose camera is provably a pure translation of it
    /// ([`Camera::is_translation_of`], pre-filtered in O(M) by
    /// [`Camera::group_key`]) — stereo eye pairs always batch — and runs
    /// the whole group as one widened classification pass plus one
    /// covariance replay. Every batched frame stays bit-exact with its
    /// solo session; frames whose deltas are not provable fall back to
    /// the exact per-stream path. Off by default because batched frames
    /// account their culling work in [`ServeReport::batch`] (one shared
    /// pass has no meaningful per-stream attribution), so per-stream
    /// [`StreamReport::cull`] counters read zero for them.
    ///
    /// [`Camera::group_key`]: gsplat::camera::Camera::group_key
    /// [`Camera::is_translation_of`]: gsplat::camera::Camera::is_translation_of
    pub fn with_batching(mut self) -> Self {
        self.batching = true;
        self
    }

    /// Arms the server-level brownout detector: whenever the *aggregate
    /// lateness* — summed over running deadline streams, how far each
    /// stream's next undelivered frame is past its deadline — exceeds
    /// `threshold_ms` at a frame completion, the scheduler steps the
    /// lowest-priority running stream with ladder headroom down one rung
    /// (ties broken by registration order; see
    /// [`StreamSpec::with_priority`]). At most one step per completion,
    /// so a single spike cannot cascade the whole fleet to the floor in
    /// one tick. Off by default.
    pub fn with_brownout(mut self, threshold_ms: f64) -> Self {
        self.brownout_ms = Some(threshold_ms.max(0.0));
        self
    }

    /// The shared scene every stream renders.
    pub fn shared(&self) -> &Arc<SharedScene> {
        &self.shared
    }

    /// The current scene epoch (0 until the first successful reload).
    pub fn scene_epoch(&self) -> u64 {
        self.scene_epoch
    }

    /// Swaps the served scene for one decoded from `source`, synchronously
    /// (idle-server counterpart of [`ServerHandle::reload_scene`]).
    ///
    /// All-or-nothing: the source is fully decoded and validated *before*
    /// any server state is touched, so on error the old scene, every
    /// session's warm state and the scene epoch are untouched — attached
    /// streams keep rendering bit-exactly as if the reload was never
    /// attempted. On success the epoch bumps; if the new scene's
    /// fingerprint matches the current one the existing allocations are
    /// kept (warm state survives, frames stay bit-exact), otherwise each
    /// stream re-binds at its next dispatched frame.
    ///
    /// # Errors
    ///
    /// Whatever [`gsplat::asset`]'s loader reports for the source.
    pub fn reload_scene(&mut self, source: SceneSource) -> Result<ReloadOutcome, AssetError> {
        self.do_reload(source)
    }

    /// The swap point shared by the sync and handle-driven reload paths.
    fn do_reload(&mut self, source: SceneSource) -> Result<ReloadOutcome, AssetError> {
        // Decode/validate first: any failure returns before a single field
        // of the server (or any stream) is mutated — that *is* the
        // rollback guarantee.
        let (candidate, quarantined) = match source {
            SceneSource::Shared(shared) => (*shared, 0),
            SceneSource::Bytes(bytes, policy) => {
                let loaded = asset::decode_scene(&bytes, policy)?;
                (
                    SharedScene::new(loaded.scene),
                    loaded.report.quarantined.len(),
                )
            }
            SceneSource::Path(path, policy) => {
                let loaded = asset::load_scene(&path, policy)?;
                (
                    SharedScene::new(loaded.scene),
                    loaded.report.quarantined.len(),
                )
            }
        };
        let previous_epoch = self.scene_epoch;
        self.scene_epoch += 1;
        let changed = candidate.fingerprint() != self.shared.fingerprint();
        if changed {
            // In-flight frames hold their own `Arc<SharedScene>` clone and
            // finish against the old scene; streams re-bind lazily at
            // their next dispatch (entry epoch trails the server's).
            self.shared = Arc::new(candidate);
        } else {
            // Same bits: keep the existing allocations so index sharing
            // and every session's warm temporal state survive. Only
            // entries already bound to the scene being re-confirmed may
            // skip the re-bind — a stream still trailing an *earlier*
            // changed reload keeps its pending rebind, or it would render
            // the new scene against its stale index.
            for e in &mut self.streams {
                if e.scene_epoch == previous_epoch {
                    e.scene_epoch = self.scene_epoch;
                }
            }
        }
        Ok(ReloadOutcome {
            epoch: self.scene_epoch,
            fingerprint: self.shared.fingerprint(),
            changed,
            quarantined,
        })
    }

    /// The worker pool frames are scheduled onto.
    pub fn pool(&self) -> &Arc<WorkerPool> {
        &self.pool
    }

    /// Number of registered streams.
    pub fn stream_count(&self) -> usize {
        self.streams.len()
    }

    /// A cloneable handle for mid-flight [`ServerHandle::attach`] /
    /// [`ServerHandle::detach`].
    pub fn handle(&self) -> ServerHandle<R> {
        ServerHandle {
            tx: self.tx.clone(),
            next_id: Arc::clone(&self.next_id),
        }
    }

    /// Registers a stream, subject to admission control. Admitted streams
    /// get a fresh serial-policy [`Session`], prepared against the shared
    /// scene (indexed configurations adopt the shared `Arc<SceneIndex>` —
    /// built now, once, if this is the first). Under
    /// [`AdmissionPolicy::Reject`] at capacity, the spec is handed back.
    pub fn attach(&mut self, spec: StreamSpec<R>) -> AttachOutcome<R> {
        if self.admission == AdmissionPolicy::Reject {
            if let Some(cap) = self.capacity {
                let active = self
                    .streams
                    .iter()
                    .filter(|e| !e.sched.phase.is_terminal() && !e.detached)
                    .count();
                if active >= cap {
                    return AttachOutcome::Rejected {
                        spec: Box::new(spec),
                        capacity: cap,
                    };
                }
            }
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.register(id, spec);
        AttachOutcome::Admitted { id }
    }

    /// [`Server::attach`] for servers without admission limits: returns
    /// the stream id directly.
    ///
    /// # Panics
    ///
    /// If the stream is rejected (only possible under
    /// [`AdmissionPolicy::Reject`] with a capacity set).
    pub fn add_stream(&mut self, spec: StreamSpec<R>) -> usize {
        match self.attach(spec) {
            AttachOutcome::Admitted { id } => id,
            // vrlint: allow(VL01, reason = "documented # Panics wrapper; capacity-limited servers use attach() and handle Rejected")
            AttachOutcome::Rejected { spec, capacity } => panic!(
                "stream {:?} rejected: server at capacity {capacity}",
                spec.name
            ),
        }
    }

    /// Removes stream `id` from an idle server. Returns `false` when no
    /// such stream exists. (Mid-run detach goes through
    /// [`ServerHandle::detach`].)
    pub fn detach(&mut self, id: usize) -> bool {
        match self.find(id) {
            Some(k) => {
                self.streams.remove(k);
                true
            }
            None => false,
        }
    }

    /// Replaces stream `id`'s fault injector (e.g. healing an injected
    /// fault before a rerun). Returns `false` when no such stream exists.
    pub fn set_faults(&mut self, id: usize, injector: FaultInjector) -> bool {
        match self.find(id) {
            Some(k) => {
                lock_state(&self.streams[k].state).injector = injector;
                true
            }
            None => false,
        }
    }

    /// A clone of stream `id`'s current `Arc<SceneIndex>` (for sharing
    /// assertions in tests; `None` for non-indexed streams).
    pub fn stream_index(&self, id: usize) -> Option<Arc<gsplat::index::SceneIndex>> {
        let k = self.find(id)?;
        lock_state(&self.streams[k].state)
            .session
            .scene_index()
            .cloned()
    }

    fn find(&self, id: usize) -> Option<usize> {
        self.streams.iter().position(|e| e.id == id)
    }

    /// Builds the entry for an admitted spec.
    fn register(&mut self, id: usize, spec: StreamSpec<R>) {
        let mut session = Session::new(ThreadPolicy::serial());
        if spec.build_stream {
            session = session.with_stream();
        }
        session.prepare_shared(&self.shared, &spec.cfg);
        let baseline = (session.resort_stats(), session.cull_stats());
        // Precompute the ladder's derived configurations once: rung
        // switches inside the scheduler are then pure index changes.
        let rung_cfgs = spec.ladder.derive_all(&spec.cfg);
        let rung_kernels = spec.ladder.kernels();
        let cost_scales = spec.ladder.cost_scales(&spec.cfg);
        // The scheduler-side camera-config mirror: rung_cfgs when the
        // ladder has rungs, else the base config — exactly what the
        // frame task resolves, so formation-time cameras match the bits
        // the render computes.
        let mut cam_cfgs = rung_cfgs.clone();
        if cam_cfgs.is_empty() {
            cam_cfgs.push(spec.cfg.clone());
        }
        self.streams.push(StreamEntry {
            id,
            name: spec.name,
            budget: spec.cfg.frames,
            indexed: spec.cfg.indexed,
            deadline_ms: spec.deadline_ms,
            drop_late: spec.drop_late,
            rung_count: spec.ladder.len().max(1),
            down_after: spec.ladder.down_after(),
            up_after: spec.ladder.up_after(),
            priority: spec.priority,
            detached: false,
            needs_reset: false,
            cam_cfgs,
            baseline,
            scene_epoch: self.scene_epoch,
            sched: Sched::default(),
            state: Arc::new(Mutex::new(StreamState {
                cfg: spec.cfg,
                rung_cfgs,
                rung_kernels,
                cost_scales,
                session,
                backend: spec.backend,
                injector: spec.injector,
                retry: spec.retry,
            })),
        });
    }
}

/// Locks a stream's state, recovering from poisoning (panics are caught
/// inside the frame task, but stay robust anyway).
fn lock_state<R>(state: &Arc<Mutex<StreamState<R>>>) -> std::sync::MutexGuard<'_, StreamState<R>> {
    match state.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl<R: Send + 'static> Server<R> {
    /// Serves every registered stream to a terminal phase across the pool
    /// and returns per-stream outputs and counters. Streams are then
    /// rewound for the next run: `Completed` streams keep their warm
    /// temporal state (still bit-exact — the temporal machinery never
    /// approximates — just cheaper, which is what benchmark repetitions
    /// want), while evicted/failed streams get
    /// [`Session::invalidate_temporal`] so their rerun is bit-exact from
    /// frame 0. Detached streams are removed after reporting.
    pub fn run(&mut self) -> ServeReport<R> {
        let t0 = Instant::now();
        self.begin_run();
        let workers = self.pool.workers();
        let mut in_flight = 0usize;
        loop {
            // Apply everything that arrived while we slept (or before the
            // run started), then make progress deterministically:
            // promotions first, sheds second, dispatch last.
            self.pump(&mut in_flight);
            self.promote_admitted();
            self.drop_late_frames();
            self.dispatch_ready(&mut in_flight, workers);
            if in_flight == 0 && self.all_settled() {
                break;
            }
            let msg = match self.watch_tick() {
                // Deadline streams need wall-clock ticks for the watchdog
                // and the frame-shedding rule even while nothing
                // completes.
                Some(tick) => match self.rx.recv_timeout(tick) {
                    Ok(m) => Some(m),
                    Err(RecvTimeoutError::Timeout) => None,
                    Err(RecvTimeoutError::Disconnected) => {
                        // vrlint: allow(VL01, reason = "self.tx keeps a sender alive for the scheduler's lifetime, so the channel cannot disconnect")
                        unreachable!("scheduler holds a sender")
                    }
                },
                // vrlint: allow(VL01, reason = "self.tx keeps a sender alive for the scheduler's lifetime, so the channel cannot disconnect")
                None => Some(self.rx.recv().expect("scheduler holds a sender")),
            };
            if let Some(m) = msg {
                self.handle_msg(m, &mut in_flight);
            }
            self.watchdog(&mut in_flight);
        }
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        self.finish_run(wall_ms)
    }

    /// Drains the channel without blocking.
    fn pump(&mut self, in_flight: &mut usize) {
        while let Ok(m) = self.rx.try_recv() {
            self.handle_msg(m, in_flight);
        }
    }

    /// Processes pending commands and stale completions left over from a
    /// previous run, and re-arms sessions flagged for a temporal reset.
    fn begin_run(&mut self) {
        let mut stray = 0usize;
        self.pump(&mut stray);
        debug_assert_eq!(stray, 0, "no live dispatches outside run()");
        // Fresh per-run batch accounting; `self.batches` (the cull/
        // covariance state itself) persists so replay spans runs.
        self.batch = BatchStats::default();
        for e in &mut self.streams {
            if e.needs_reset {
                // Blocking lock: a zombie from the previous run may still
                // hold the state; correctness over latency here.
                let mut st = lock_state(&e.state);
                st.session.invalidate_temporal();
                e.needs_reset = false;
                e.baseline = (st.session.resort_stats(), st.session.cull_stats());
            } else {
                let st = lock_state(&e.state);
                e.baseline = (st.session.resort_stats(), st.session.cull_stats());
            }
        }
    }

    /// `Admitted → Running` while capacity allows, in registration order.
    fn promote_admitted(&mut self) {
        let cap = self.capacity.unwrap_or(usize::MAX);
        let mut running = self
            .streams
            .iter()
            .filter(|e| matches!(e.sched.phase, StreamPhase::Running))
            .count();
        for e in &mut self.streams {
            if !matches!(e.sched.phase, StreamPhase::Admitted) {
                continue;
            }
            if running >= cap {
                break;
            }
            e.sched.started_at = Some(Instant::now());
            if e.budget == 0 {
                e.sched.phase = StreamPhase::Completed;
            } else {
                e.sched.phase = StreamPhase::Running;
                running += 1;
            }
        }
    }

    /// Graceful degradation: sheds frames that are already a full period
    /// past their deadline before they start (opt-in per stream).
    fn drop_late_frames(&mut self) {
        for e in &mut self.streams {
            if !e.drop_late || e.sched.busy || !matches!(e.sched.phase, StreamPhase::Running) {
                continue;
            }
            let (Some(period), Some(start)) = (e.deadline_ms, e.sched.started_at) else {
                continue;
            };
            let now_ms = start.elapsed().as_secs_f64() * 1e3;
            while e.sched.cursor < e.budget {
                let due = (e.sched.cursor + 1) as f64 * period;
                if now_ms <= due + period {
                    break;
                }
                e.sched.dropped.push(e.sched.cursor);
                e.sched.cursor += 1;
                // A shed frame is a missed deadline for the ladder too:
                // the hysteresis sees it and can step down before the
                // stream falls far enough behind to drop more.
                Self::apply_hysteresis(e, true);
            }
            if e.sched.cursor >= e.budget {
                e.sched.phase = StreamPhase::Completed;
            }
        }
    }

    /// Fills the pool with ready frames: batch rounds when batching is
    /// on and membership is provable, the exact solo path otherwise.
    fn dispatch_ready(&mut self, in_flight: &mut usize, workers: usize) {
        while *in_flight < workers {
            let Some(k) = self.pick() else { break };
            if self.batching && self.streams[k].indexed {
                let members = self.form_batch(k);
                let m = members.len();
                self.batch.rounds += 1;
                if self.batch.occupancy.len() < m {
                    self.batch.occupancy.resize(m, 0);
                }
                self.batch.occupancy[m - 1] += 1;
                if m >= 2 {
                    self.batch.batched_rounds += 1;
                    self.batch.batched_frames += m;
                    self.dispatch_batch(members, in_flight);
                    continue;
                }
                // No provable batch-mate: fall back to the exact
                // per-stream path (per-stream CullState, per-stream cull
                // accounting) — the fallback the bit-exactness argument
                // demands for unprovable deltas.
                self.batch.solo_frames += 1;
            }
            self.dispatch_solo(k, in_flight);
        }
    }

    /// The camera stream `k` renders frame `frame` with at its current
    /// rung, computed lock-free from the scheduler-side config mirror —
    /// the exact expression the frame task evaluates, so formation-time
    /// membership proofs hold bit-for-bit at render time.
    fn stream_camera(&self, k: usize, frame: usize) -> Option<Camera> {
        let e = &self.streams[k];
        let rung = e.sched.rung.min(e.rung_count.saturating_sub(1));
        let cfg = e.cam_cfgs.get(rung).or_else(|| e.cam_cfgs.first())?;
        Some(
            cfg.path
                .camera(frame, cfg.frames, cfg.width, cfg.height, cfg.fov_y),
        )
    }

    /// Collects the batch round led by stream `k`'s next frame: the
    /// leader, its stereo sibling (eye pairs always batch), and every
    /// other ready indexed frame provably a pure translation of the
    /// leader — the leader's [`Camera::group_key`] filters candidates in
    /// O(M), [`Camera::is_translation_of`] confirms each bit-for-bit.
    /// Returned `(stream index, frame)` pairs keep each stream's frames
    /// in frame order.
    ///
    /// [`Camera::group_key`]: gsplat::camera::Camera::group_key
    /// [`Camera::is_translation_of`]: gsplat::camera::Camera::is_translation_of
    fn form_batch(&self, k: usize) -> Vec<(usize, usize)> {
        let lead_frame = self.streams[k].sched.cursor;
        let mut members = vec![(k, lead_frame)];
        let Some(leader) = self.stream_camera(k, lead_frame) else {
            return members;
        };
        let key = leader.group_key();
        self.push_stereo_sibling(k, lead_frame, &leader, &mut members);
        for j in 0..self.streams.len() {
            if j == k {
                continue;
            }
            let o = &self.streams[j];
            let ready = matches!(o.sched.phase, StreamPhase::Running)
                && !o.sched.busy
                && o.sched.cursor < o.budget
                && o.indexed;
            if !ready {
                continue;
            }
            let Some(cam) = self.stream_camera(j, o.sched.cursor) else {
                continue;
            };
            if cam.group_key() == key && cam.is_translation_of(&leader) {
                members.push((j, o.sched.cursor));
                self.push_stereo_sibling(j, o.sched.cursor, &leader, &mut members);
            }
        }
        members
    }

    /// Stereo eye pairs always batch: when stream `j`'s `frame` is the
    /// even (left) eye of a [`CameraPath::Stereo`] sequence and the odd
    /// (right) eye is provably a pure translation of the round leader,
    /// the sibling frame joins the same round.
    fn push_stereo_sibling(
        &self,
        j: usize,
        frame: usize,
        leader: &Camera,
        members: &mut Vec<(usize, usize)>,
    ) {
        let e = &self.streams[j];
        let rung = e.sched.rung.min(e.rung_count.saturating_sub(1));
        let stereo = e
            .cam_cfgs
            .get(rung)
            .or_else(|| e.cam_cfgs.first())
            .is_some_and(|cfg| matches!(cfg.path, CameraPath::Stereo { .. }));
        if !stereo || !frame.is_multiple_of(2) || frame + 1 >= e.budget {
            return;
        }
        if let Some(sibling) = self.stream_camera(j, frame + 1) {
            if sibling.is_translation_of(leader) {
                members.push((j, frame + 1));
            }
        }
    }

    /// Dispatches one ≥2-member round as a single pool task: one widened
    /// classification pass plus one covariance replay in the round's
    /// persistent [`BatchCullState`] serves every member, then each
    /// member frame renders through its own fault seam, retry loop and
    /// panic containment and sends its own completion — a faulting
    /// member fails only its own stream.
    fn dispatch_batch(&mut self, members: Vec<(usize, usize)>, in_flight: &mut usize) {
        let now = Instant::now();
        // One persistent batch state per camera group key: the leader
        // orientation per key is constant, so the covariance cache
        // replays across rounds and across runs.
        let key = match members.first().and_then(|&(k, f)| self.stream_camera(k, f)) {
            Some(cam) => cam.group_key(),
            None => return, // unreachable: formation proved the leader
        };
        let batch_state = match self.batches.iter().find(|(k, _)| *k == key) {
            Some((_, s)) => Arc::clone(s),
            None => {
                let s = Arc::new(Mutex::new(BatchCullState::default()));
                self.batches.push((key, Arc::clone(&s)));
                s
            }
        };
        let mut tasks: Vec<BatchMember<R>> = Vec::with_capacity(members.len());
        for &(k, frame) in &members {
            let e = &mut self.streams[k];
            e.sched.cursor = frame + 1;
            e.sched.busy = true;
            e.sched.in_flight_frames += 1;
            e.sched.dispatched_at = Some(now);
            *in_flight += 1;
            e.sched.rung = e.sched.rung.min(e.rung_count.saturating_sub(1));
            // Scene-epoch fence, latched on the stream's first member of
            // the round.
            let rebind = e.scene_epoch != self.scene_epoch;
            e.scene_epoch = self.scene_epoch;
            tasks.push(BatchMember {
                id: e.id,
                frame,
                rung: e.sched.rung as u8,
                generation: e.sched.generation,
                rebind,
                state: Arc::clone(&e.state),
            });
        }
        let shared = Arc::clone(&self.shared);
        let tx = self.tx.clone();
        self.pool.submit(move || {
            // One Complete guard per member, created before anything can
            // fail: exactly one Done per dispatched frame even if this
            // task aborts. The Vec drops front-to-back, so completions
            // arrive in frame order per stream.
            let mut completes: Vec<Complete<R>> = tasks
                .iter()
                .map(|m| Complete {
                    tx: tx.clone(),
                    id: m.id,
                    generation: m.generation,
                    frame: m.frame,
                    rung: m.rung,
                    batched: true,
                    msg: None,
                })
                .collect();
            let t0 = Instant::now();
            // Lock every distinct member stream in ascending stream-id
            // order — a total order shared by every batch task, so
            // concurrent rounds cannot deadlock (they cannot overlap in
            // streams anyway: a member is !busy at formation and busy
            // from dispatch to its last completion).
            let mut order: Vec<usize> = Vec::new();
            for (i, m) in tasks.iter().enumerate() {
                if !order.iter().any(|&o| tasks[o].id == m.id) {
                    order.push(i);
                }
            }
            order.sort_by_key(|&o| tasks[o].id);
            let guard_of: Vec<usize> = tasks
                .iter()
                .map(|m| order.iter().position(|&o| tasks[o].id == m.id).unwrap_or(0))
                .collect();
            let mut guards: Vec<_> = order.iter().map(|&o| lock_state(&tasks[o].state)).collect();
            // Re-bind streams trailing a scene reload before anything of
            // theirs renders (temporal invalidation + index adoption),
            // exactly as the solo path does inside its own lock.
            for (i, m) in tasks.iter().enumerate() {
                if m.rebind {
                    let st = &mut *guards[guard_of[i]];
                    st.session.invalidate_temporal();
                    st.session.attach_index(Arc::clone(shared.index()));
                }
            }
            // Member cameras, bit-identical to what each render will
            // compute (same config, same expression, same inputs).
            let cameras: Vec<Camera> = tasks
                .iter()
                .enumerate()
                .map(|(i, m)| {
                    let st = &*guards[guard_of[i]];
                    let cfg = st.rung_cfgs.get(m.rung as usize).unwrap_or(&st.cfg);
                    cfg.path
                        .camera(m.frame, cfg.frames, cfg.width, cfg.height, cfg.fov_y)
                })
                .collect();
            // The batch lock ranks after every stream-state lock in the
            // declared order and is always acquired last.
            let mut batch_guard = match batch_state.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            let round = &mut *batch_guard;
            // ONE widened classification pass (and one covariance-replay
            // epoch decision) for the whole round.
            round.begin_round(shared.index(), &cameras);
            let scene = shared.scene_arc();
            for (i, m) in tasks.iter().enumerate() {
                let st = &mut *guards[guard_of[i]];
                let frame = m.frame;
                let rung_ix = m.rung as usize;
                let cost_scale = st.cost_scales.get(rung_ix).copied().unwrap_or(1.0);
                let mut retries = 0u32;
                let result: Result<R, StreamFault> = loop {
                    // Same fault seam as the solo path: injected faults
                    // fire BEFORE the member renders, so they never
                    // half-mutate session state — and the shared batch
                    // state only ever holds pure functions of the leader
                    // orientation, identical no matter which member
                    // wrote them, so a faulting member cannot move its
                    // batch-mates' bits.
                    let injected = st.injector.intercept_scaled(frame, retries, cost_scale);
                    let attempt: Result<Result<R, DrawError>, String> = match injected {
                        Some(FaultAction::Fail(e)) => Ok(Err(e)),
                        Some(FaultAction::Panic(msg)) => {
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                                // vrlint: allow(VL01, reason = "fault-injection seam: the panic exists to be caught by the enclosing catch_unwind")
                                || -> Result<R, DrawError> { panic!("{msg}") },
                            ))
                            .map_err(|p| panic_message(p.as_ref()))
                        }
                        other => {
                            if let Some(FaultAction::Sleep(d)) = other {
                                std::thread::sleep(d);
                            }
                            let StreamState {
                                cfg,
                                rung_cfgs,
                                rung_kernels,
                                session,
                                backend,
                                ..
                            } = st;
                            let cfg = rung_cfgs.get(rung_ix).unwrap_or(cfg);
                            let kernel = rung_kernels.get(rung_ix).copied().flatten();
                            // catch_unwind INSIDE the locks: a panicking
                            // backend unwinds into this Err arm, not
                            // past the guards, so no mutex is poisoned.
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                                || match backend {
                                    Backend::Infallible(render) => Ok(session
                                        .render_frame_batched(
                                            &scene,
                                            cfg,
                                            frame,
                                            &mut *round,
                                            render,
                                        )),
                                    Backend::Fallible(render) => session.render_frame_batched(
                                        &scene,
                                        cfg,
                                        frame,
                                        &mut *round,
                                        render,
                                    ),
                                    Backend::VrPipe { gpu, variant, wrap } => {
                                        let overridden;
                                        let gpu = match kernel {
                                            Some(kernel) => {
                                                overridden = GpuConfig {
                                                    kernel,
                                                    ..gpu.clone()
                                                };
                                                &overridden
                                            }
                                            None => &*gpu,
                                        };
                                        session
                                            .render_frame_vrpipe_batched(
                                                &scene,
                                                cfg,
                                                frame,
                                                gpu,
                                                *variant,
                                                &mut *round,
                                            )
                                            .map(wrap)
                                    }
                                },
                            ))
                            .map_err(|p| panic_message(p.as_ref()))
                        }
                    };
                    match attempt {
                        Err(message) => break Err(StreamFault::Panicked { message, frame }),
                        Ok(Ok(out)) => break Ok(out),
                        Ok(Err(error)) => {
                            if error.is_transient() && retries < st.retry.max_retries {
                                let delay = st.retry.backoff_ms(m.id, frame, retries);
                                if delay > 0.0 {
                                    std::thread::sleep(Duration::from_secs_f64(delay / 1e3));
                                }
                                retries += 1;
                            } else {
                                break Err(StreamFault::Render { error, retries });
                            }
                        }
                    }
                };
                completes[i].msg = Some(Msg::Done {
                    id: m.id,
                    generation: m.generation,
                    frame,
                    rung: m.rung,
                    latency_ms: t0.elapsed().as_secs_f64() * 1e3,
                    retries,
                    batched: true,
                    result,
                });
            }
            drop(batch_guard);
            drop(guards);
            // `completes` drops last: every lock is released before any
            // completion is observed, matching the solo path's
            // drop(guard)-then-send ordering.
        });
    }

    /// Dispatches stream `k`'s next frame as its own run-to-completion
    /// task — the exact per-stream path every unbatched frame takes.
    fn dispatch_solo(&mut self, k: usize, in_flight: &mut usize) {
        {
            let e = &mut self.streams[k];
            let frame = e.sched.cursor;
            e.sched.cursor += 1;
            e.sched.busy = true;
            e.sched.in_flight_frames = 1;
            e.sched.dispatched_at = Some(Instant::now());
            *in_flight += 1;
            let id = e.id;
            let generation = e.sched.generation;
            // The rung is latched here, between dispatches — the task
            // renders this whole frame at one rung, and hysteresis or
            // brownout can only move the *next* frame.
            e.sched.rung = e.sched.rung.min(e.rung_count.saturating_sub(1));
            let rung = e.sched.rung as u8;
            let state = Arc::clone(&e.state);
            // Scene-epoch fence: a stream that trails a successful reload
            // re-binds inside its own lock before this frame renders.
            let rebind = e.scene_epoch != self.scene_epoch;
            e.scene_epoch = self.scene_epoch;
            let indexed = e.indexed;
            let shared = Arc::clone(&self.shared);
            let tx = self.tx.clone();
            // Run-to-completion frame task. Exactly one completion per
            // dispatch: the normal path stores its message in the guard,
            // and the guard's drop sends it — with a Failed backstop if
            // the task somehow aborts first — so the scheduler can never
            // be stranded waiting on a completion that will not come.
            self.pool.submit(move || {
                let mut complete = Complete {
                    tx,
                    id,
                    generation,
                    frame,
                    rung,
                    batched: false,
                    msg: None,
                };
                let t0 = Instant::now();
                let mut guard = lock_state(&state);
                let st = &mut *guard;
                if rebind {
                    // The scene changed under this stream: cold-start its
                    // temporal machinery (sorter warm start + cull epochs)
                    // and adopt the new shared index, so every frame from
                    // here is bit-exact with a solo session on the new
                    // scene.
                    st.session.invalidate_temporal();
                    if indexed {
                        st.session.attach_index(Arc::clone(shared.index()));
                    }
                }
                let scene = shared.scene_arc();
                let rung_ix = rung as usize;
                // Load injections scale with the rung's render cost:
                // degrading genuinely sheds the injected overload.
                let cost_scale = st.cost_scales.get(rung_ix).copied().unwrap_or(1.0);
                let mut retries = 0u32;
                let result: Result<R, StreamFault> = loop {
                    // The fault seam fires BEFORE the real backend: an
                    // injected fault never half-mutates session state,
                    // which is what keeps faulted streams' sessions
                    // replayable and other streams' bits untouchable.
                    let injected = st.injector.intercept_scaled(frame, retries, cost_scale);
                    let attempt: Result<Result<R, DrawError>, String> = match injected {
                        Some(FaultAction::Fail(e)) => Ok(Err(e)),
                        Some(FaultAction::Panic(msg)) => {
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                                // vrlint: allow(VL01, reason = "fault-injection seam: the panic exists to be caught by the enclosing catch_unwind")
                                || -> Result<R, DrawError> { panic!("{msg}") },
                            ))
                            .map_err(|p| panic_message(p.as_ref()))
                        }
                        other => {
                            if let Some(FaultAction::Sleep(d)) = other {
                                std::thread::sleep(d);
                            }
                            let StreamState {
                                cfg,
                                rung_cfgs,
                                rung_kernels,
                                session,
                                backend,
                                ..
                            } = st;
                            // The rung's derived configuration drives the
                            // whole frame; a missing index falls back to
                            // the base config (rung 0 derivation == base).
                            let cfg = rung_cfgs.get(rung_ix).unwrap_or(cfg);
                            let kernel = rung_kernels.get(rung_ix).copied().flatten();
                            // catch_unwind INSIDE the lock: a panicking
                            // backend unwinds into this Err arm, not past
                            // the guard, so the mutex is never poisoned.
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                                || match backend {
                                    Backend::Infallible(render) => {
                                        Ok(session.render_frame(&scene, cfg, frame, render))
                                    }
                                    Backend::Fallible(render) => {
                                        session.render_frame(&scene, cfg, frame, render)
                                    }
                                    Backend::VrPipe { gpu, variant, wrap } => {
                                        // The rung may override the
                                        // simulated fragment kernel for
                                        // this frame only.
                                        let overridden;
                                        let gpu = match kernel {
                                            Some(kernel) => {
                                                overridden = GpuConfig {
                                                    kernel,
                                                    ..gpu.clone()
                                                };
                                                &overridden
                                            }
                                            None => &*gpu,
                                        };
                                        session
                                            .render_frame_vrpipe(&scene, cfg, frame, gpu, *variant)
                                            .map(wrap)
                                    }
                                },
                            ))
                            .map_err(|p| panic_message(p.as_ref()))
                        }
                    };
                    match attempt {
                        Err(message) => break Err(StreamFault::Panicked { message, frame }),
                        Ok(Ok(out)) => break Ok(out),
                        Ok(Err(error)) => {
                            if error.is_transient() && retries < st.retry.max_retries {
                                let delay = st.retry.backoff_ms(id, frame, retries);
                                if delay > 0.0 {
                                    std::thread::sleep(Duration::from_secs_f64(delay / 1e3));
                                }
                                retries += 1;
                            } else {
                                break Err(StreamFault::Render { error, retries });
                            }
                        }
                    }
                };
                drop(guard);
                complete.msg = Some(Msg::Done {
                    id,
                    generation,
                    frame,
                    rung,
                    latency_ms: t0.elapsed().as_secs_f64() * 1e3,
                    retries,
                    batched: false,
                    result,
                });
            });
        }
    }

    /// Handles one completion or command.
    fn handle_msg(&mut self, msg: Msg<R>, in_flight: &mut usize) {
        match msg {
            Msg::Cmd(Command::Attach { id, spec }) => {
                if self.admission == AdmissionPolicy::Reject {
                    if let Some(cap) = self.capacity {
                        let active = self
                            .streams
                            .iter()
                            .filter(|e| !e.sched.phase.is_terminal() && !e.detached)
                            .count();
                        if active >= cap {
                            return; // handle-attach is fire-and-forget
                        }
                    }
                }
                self.register(id, *spec);
            }
            Msg::Cmd(Command::Reload { source }) => {
                let outcome = self.do_reload(source);
                self.reloads.push(outcome);
            }
            Msg::Cmd(Command::Detach { id }) => {
                let Some(k) = self.find(id) else { return };
                let e = &mut self.streams[k];
                e.detached = true;
                if !e.sched.phase.is_terminal() {
                    if e.sched.busy {
                        // In-flight frames become zombies; their
                        // completions are recognised by generation and
                        // dropped.
                        e.sched.generation += 1;
                        e.sched.busy = false;
                        e.sched.dispatched_at = None;
                        *in_flight -= e.sched.in_flight_frames;
                        e.sched.in_flight_frames = 0;
                    }
                    e.sched.phase = StreamPhase::Evicted(EvictReason::Detached);
                }
            }
            Msg::Done {
                id,
                generation,
                frame,
                rung,
                latency_ms,
                retries,
                batched,
                result,
            } => {
                let Some(k) = self.find(id) else { return };
                if self.streams[k].sched.generation != generation {
                    return; // zombie of an evicted/detached epoch
                }
                let budget_ms = self.stall_budget(k);
                let e = &mut self.streams[k];
                e.sched.in_flight_frames = e.sched.in_flight_frames.saturating_sub(1);
                e.sched.busy = e.sched.in_flight_frames > 0;
                if !e.sched.busy {
                    e.sched.dispatched_at = None;
                }
                *in_flight -= 1;
                e.sched.busy_ms += latency_ms;
                e.sched.retries += retries;
                if e.sched.phase.is_terminal() {
                    // A batch-mate completing after its own stream already
                    // reached a terminal phase this round (e.g. the right
                    // eye of a stereo pair whose left eye failed): the
                    // counters above are settled, the result is discarded.
                    return;
                }
                // Watchdog parity for serial pools: a frame that ran
                // inline on the scheduler thread could not be evicted
                // mid-stall, so evict on its (late) completion instead —
                // both pool shapes converge on the same report.
                if let Some(budget_ms) = budget_ms {
                    if latency_ms > budget_ms {
                        // Batch-mates still in flight become zombies of
                        // the bumped generation; free their pool slots
                        // now (their Dones stop at the fence).
                        *in_flight -= e.sched.in_flight_frames;
                        e.sched.in_flight_frames = 0;
                        e.sched.busy = false;
                        e.sched.dispatched_at = None;
                        e.sched.generation += 1;
                        e.sched.phase = StreamPhase::Evicted(EvictReason::Stalled {
                            frame,
                            waited_ms: latency_ms,
                            budget_ms,
                        });
                        return;
                    }
                }
                let mut accepted = false;
                match result {
                    Ok(out) => {
                        accepted = true;
                        e.sched.latencies.push(latency_ms);
                        let mut missed = false;
                        if let (Some(period), Some(start)) = (e.deadline_ms, e.sched.started_at) {
                            let due = (frame + 1) as f64 * period;
                            if start.elapsed().as_secs_f64() * 1e3 > due {
                                e.sched.deadline_misses += 1;
                                missed = true;
                            }
                        }
                        e.sched.rungs.push(rung);
                        e.sched.outputs.push((frame, out));
                        if batched {
                            e.sched.frames_batched += 1;
                        }
                        // Hysteresis AFTER recording: the step only
                        // affects the next dispatched frame.
                        Self::apply_hysteresis(e, missed);
                        // A stereo self-pair's left eye must not mark the
                        // stream Completed while the right eye is still
                        // in flight — its Done would be discarded above.
                        if e.sched.cursor >= e.budget && e.sched.in_flight_frames == 0 {
                            e.sched.phase = StreamPhase::Completed;
                        }
                    }
                    Err(fault) => {
                        e.sched.phase = StreamPhase::Failed(fault);
                    }
                }
                if accepted {
                    // Evaluated at completions only: at most one brownout
                    // step per delivered frame.
                    self.brownout_shed();
                }
            }
        }
    }

    /// Per-stream ladder hysteresis: `down_after` consecutive deadline
    /// misses step down one rung, `up_after` consecutive on-time frames
    /// step back up. Counters reset on every step and on every
    /// miss/hit flip, so a stream oscillating at the boundary stays put.
    fn apply_hysteresis(e: &mut StreamEntry<R>, missed: bool) {
        if e.rung_count <= 1 {
            return;
        }
        if missed {
            e.sched.consec_hits = 0;
            e.sched.consec_misses += 1;
            if e.sched.consec_misses >= e.down_after && e.sched.rung + 1 < e.rung_count {
                e.sched.rung += 1;
                e.sched.steps_down += 1;
                e.sched.consec_misses = 0;
            }
        } else {
            e.sched.consec_misses = 0;
            e.sched.consec_hits += 1;
            if e.sched.consec_hits >= e.up_after && e.sched.rung > 0 {
                e.sched.rung -= 1;
                e.sched.steps_up += 1;
                e.sched.consec_hits = 0;
            }
        }
    }

    /// Aggregate lateness across running deadline streams, ms: for each,
    /// how far its next undelivered frame is past its deadline. Frames
    /// already shed by frame dropping count as delivered — the metric
    /// recovers once a stream is back on schedule by any means.
    fn aggregate_lateness_ms(&self) -> f64 {
        let mut total = 0.0;
        for e in &self.streams {
            if !matches!(e.sched.phase, StreamPhase::Running) {
                continue;
            }
            let (Some(period), Some(start)) = (e.deadline_ms, e.sched.started_at) else {
                continue;
            };
            let delivered = e.sched.outputs.len() + e.sched.dropped.len();
            let due = (delivered + 1) as f64 * period;
            total += (start.elapsed().as_secs_f64() * 1e3 - due).max(0.0);
        }
        total
    }

    /// The stream the brownout detector would step down next: the
    /// lowest-priority running stream with ladder headroom, ties broken
    /// by registration order. `None` when every candidate is floored.
    fn brownout_target(&self) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (k, e) in self.streams.iter().enumerate() {
            if !matches!(e.sched.phase, StreamPhase::Running) {
                continue;
            }
            if e.sched.rung + 1 >= e.rung_count {
                continue;
            }
            match best {
                None => best = Some(k),
                Some(b) => {
                    if e.priority < self.streams[b].priority {
                        best = Some(k);
                    }
                }
            }
        }
        best
    }

    /// Server-level overload shedding: one ladder step down for the
    /// brownout target when aggregate lateness exceeds the armed
    /// threshold — quality degrades fleet-wide in priority order before
    /// the watchdog ever has to evict.
    fn brownout_shed(&mut self) {
        let Some(threshold) = self.brownout_ms else {
            return;
        };
        if self.aggregate_lateness_ms() <= threshold {
            return;
        }
        let Some(k) = self.brownout_target() else {
            return;
        };
        let e = &mut self.streams[k];
        e.sched.rung += 1;
        e.sched.steps_down += 1;
        e.sched.brownout_steps += 1;
        e.sched.consec_misses = 0;
        e.sched.consec_hits = 0;
    }

    /// Evicts running deadline streams whose in-flight frame blew the
    /// stall budget (threaded pools; serial pools converge via the
    /// late-completion check in [`Server::handle_msg`]).
    fn watchdog(&mut self, in_flight: &mut usize) {
        for k in 0..self.streams.len() {
            let Some(budget_ms) = self.stall_budget(k) else {
                continue;
            };
            let e = &mut self.streams[k];
            if !e.sched.busy || !matches!(e.sched.phase, StreamPhase::Running) {
                continue;
            }
            let Some(t) = e.sched.dispatched_at else {
                continue;
            };
            let waited_ms = t.elapsed().as_secs_f64() * 1e3;
            if waited_ms > budget_ms {
                // The zombie task keeps a pool worker until it returns;
                // its completion is discarded by generation. Scheduler
                // capacity is freed now so healthy/queued streams
                // proceed.
                e.sched.generation += 1;
                e.sched.busy = false;
                e.sched.dispatched_at = None;
                e.sched.phase = StreamPhase::Evicted(EvictReason::Stalled {
                    frame: e.sched.cursor - 1,
                    waited_ms,
                    budget_ms,
                });
                *in_flight -= e.sched.in_flight_frames;
                e.sched.in_flight_frames = 0;
            }
        }
    }

    /// The stall budget of stream `k`, ms (`None` = no deadline, never
    /// watchdogged).
    fn stall_budget(&self, k: usize) -> Option<f64> {
        self.streams[k].deadline_ms.map(|p| p * self.watchdog_k)
    }

    /// `true` once every stream is in a terminal phase.
    fn all_settled(&self) -> bool {
        self.streams.iter().all(|e| e.sched.phase.is_terminal())
    }

    /// The receive timeout while any deadline stream is live (watchdog
    /// and shed rules need wall-clock ticks), else `None` (block).
    fn watch_tick(&self) -> Option<Duration> {
        let live = self.streams.iter().any(|e| {
            e.deadline_ms.is_some()
                && matches!(e.sched.phase, StreamPhase::Running | StreamPhase::Admitted)
        });
        live.then(|| Duration::from_millis(1))
    }

    /// Picks the next stream to dispatch among the ready ones (running,
    /// not busy, frames remaining), or `None`.
    fn pick(&mut self) -> Option<usize> {
        let ready: Vec<usize> = (0..self.streams.len())
            .filter(|&i| {
                let e = &self.streams[i];
                matches!(e.sched.phase, StreamPhase::Running)
                    && !e.sched.busy
                    && e.sched.cursor < e.budget
            })
            .collect();
        if ready.is_empty() {
            return None;
        }
        match self.policy {
            SchedulePolicy::OldestFirst => Some(self.pick_oldest(&ready)),
            SchedulePolicy::Seeded(seed) => {
                // SplitMix64 step over the running state (seeded once).
                if self.rng == 0 {
                    self.rng = seed | 1;
                }
                self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let z = mix64(self.rng);
                Some(ready[(z % ready.len() as u64) as usize])
            }
            SchedulePolicy::Deadline => {
                // EDF over the ready deadline streams; deadline-less
                // streams only when no deadline stream is ready.
                let edf = ready
                    .iter()
                    .filter_map(|&i| {
                        let e = &self.streams[i];
                        let period = e.deadline_ms?;
                        let start = e.sched.started_at?;
                        let due = start
                            + Duration::from_secs_f64((e.sched.cursor + 1) as f64 * period / 1e3);
                        Some((due, i))
                    })
                    .min_by_key(|&(due, _)| due);
                match edf {
                    Some((_, i)) => Some(i),
                    None => Some(self.pick_oldest(&ready)),
                }
            }
        }
    }

    /// Fewest started frames first; ties rotate round-robin from the
    /// cursor so equal streams are served fairly.
    // vrlint: allow-block(VL01[expect], reason = "dispatch_ready only calls with a non-empty ready set, and the round-robin scan covers every index, so some ready stream attains the minimum cursor")
    fn pick_oldest(&mut self, ready: &[usize]) -> usize {
        let oldest = ready
            .iter()
            .map(|&i| self.streams[i].sched.cursor)
            .min()
            .expect("non-empty");
        let n = self.streams.len();
        let sid = (0..n)
            .map(|k| (self.rr_next + k) % n)
            .find(|&i| ready.contains(&i) && self.streams[i].sched.cursor == oldest)
            .expect("some ready stream has the oldest frame");
        self.rr_next = (sid + 1) % n;
        sid
    }

    /// Builds the report, rewinds every stream for the next run and
    /// removes detached entries.
    fn finish_run(&mut self, wall_ms: f64) -> ServeReport<R> {
        let shared_index = self.shared.index_if_built();
        let mut streams = Vec::with_capacity(self.streams.len());
        let mut total_frames = 0usize;
        let mut index_sharers = 0usize;
        let mut indexed_streams = 0usize;
        for e in &mut self.streams {
            let sched = std::mem::take(&mut e.sched);
            let phase = match sched.phase {
                // A stream still Admitted/Running when the loop settled
                // can only be one that never got work (budget exhausted
                // races are impossible: terminal phases are set on
                // completion). Normalise for the report.
                StreamPhase::Admitted | StreamPhase::Running => StreamPhase::Completed,
                p => p,
            };
            // Keep the dispatch epoch monotonic so zombies from this run
            // can never masquerade as next-run completions.
            e.sched.generation = sched.generation.wrapping_add(1);
            let (produced, frames): (Vec<usize>, Vec<R>) = sched.outputs.into_iter().unzip();
            total_frames += frames.len();
            // try_lock: an evicted stream's zombie may still hold the
            // state. Fall back to empty deltas; begin_run() re-baselines.
            let (resort, cull, shares_index) = match e.state.try_lock() {
                Ok(st) => {
                    let shares = match (shared_index, st.session.scene_index()) {
                        (Some(shared), Some(own)) => Arc::ptr_eq(shared, own),
                        _ => false,
                    };
                    (
                        resort_delta(st.session.resort_stats(), &e.baseline.0),
                        st.session.cull_stats().delta_since(&e.baseline.1),
                        shares,
                    )
                }
                Err(_) => (ResortStats::default(), CullStats::default(), false),
            };
            if e.indexed {
                indexed_streams += 1;
                if shares_index {
                    index_sharers += 1;
                }
            }
            // Rewind: completed streams keep warm temporal state; any
            // other outcome re-arms a frame-0 reset (the satellite fix —
            // sorter warm start AND CullState epochs).
            e.needs_reset = !matches!(phase, StreamPhase::Completed);
            let mut latencies = sched.latencies;
            latencies.sort_by(|a, b| a.total_cmp(b));
            streams.push(StreamReport {
                id: e.id,
                name: e.name.clone(),
                phase,
                fps: frames.len() as f64 / (wall_ms / 1e3).max(1e-12),
                frames,
                produced,
                frames_dropped: sched.dropped.len(),
                deadline_misses: sched.deadline_misses,
                retries: sched.retries,
                rungs: sched.rungs,
                rung_count: e.rung_count,
                rung_steps_down: sched.steps_down,
                rung_steps_up: sched.steps_up,
                brownout_steps: sched.brownout_steps,
                latency_p50_ms: percentile(&latencies, 0.50),
                latency_p99_ms: percentile(&latencies, 0.99),
                busy_ms: sched.busy_ms,
                resort,
                cull,
                shares_index,
                frames_batched: sched.frames_batched,
            });
        }
        self.streams.retain(|e| !e.detached);
        ServeReport {
            streams,
            wall_ms,
            total_frames,
            aggregate_fps: total_frames as f64 / (wall_ms / 1e3).max(1e-12),
            index_sharers,
            indexed_streams,
            reloads: std::mem::take(&mut self.reloads),
            scene_epoch: self.scene_epoch,
            batch: std::mem::take(&mut self.batch),
        }
    }
}

/// Per-member payload of one batch round's pool task.
struct BatchMember<R> {
    id: usize,
    frame: usize,
    rung: u8,
    generation: u32,
    /// Re-bind the stream's session to the current scene before its
    /// first frame of this round (scene-epoch fence, once per stream).
    rebind: bool,
    state: Arc<Mutex<StreamState<R>>>,
}

/// Completion backstop: exactly one `Done` per dispatched frame. The
/// normal path parks its message here; if the task aborts before that,
/// the drop sends a `Failed` placeholder instead — the scheduler can
/// never be stranded in `recv`.
struct Complete<R> {
    tx: mpsc::Sender<Msg<R>>,
    id: usize,
    generation: u32,
    frame: usize,
    rung: u8,
    batched: bool,
    msg: Option<Msg<R>>,
}

impl<R> Drop for Complete<R> {
    fn drop(&mut self) {
        let msg = self.msg.take().unwrap_or(Msg::Done {
            id: self.id,
            generation: self.generation,
            frame: self.frame,
            rung: self.rung,
            latency_ms: 0.0,
            retries: 0,
            batched: self.batched,
            result: Err(StreamFault::Panicked {
                message: "frame task aborted before reporting".into(),
                frame: self.frame,
            }),
        });
        let _ = self.tx.send(msg);
    }
}

#[cfg(test)]
mod tests {
    use super::faults::FaultKind;
    use super::*;
    use gsplat::camera::CameraPath;
    use gsplat::math::Vec3;
    use gsplat::scene::EVALUATED_SCENES;

    fn shared_scene() -> SharedScene {
        SharedScene::new(EVALUATED_SCENES[4].generate_scaled(0.03))
    }

    fn orbit_cfg(shared: &SharedScene, phase: f32, frames: usize) -> SequenceConfig {
        let s = shared.scene();
        SequenceConfig::new(
            CameraPath::orbit(s.center, s.view_radius, 1.0 + phase, 0.03),
            frames,
            64,
            48,
        )
        .with_index()
    }

    #[test]
    fn server_serves_every_stream_its_full_budget() {
        let shared = shared_scene();
        let mut server = Server::new(shared, 2);
        for k in 0..3 {
            let cfg = orbit_cfg(server.shared(), k as f32 * 0.2, 2 + k);
            server.add_stream(StreamSpec::vrpipe(
                format!("s{k}"),
                cfg,
                GpuConfig::default(),
                PipelineVariant::HetQm,
            ));
        }
        let report = server.run();
        assert_eq!(report.total_frames, 2 + 3 + 4);
        for (k, s) in report.streams.iter().enumerate() {
            assert_eq!(s.frames.len(), 2 + k, "{}", s.name);
            assert_eq!(s.phase, StreamPhase::Completed, "{}", s.name);
            assert_eq!(s.produced, (0..2 + k).collect::<Vec<_>>());
            assert_eq!(s.frames_dropped, 0);
            assert_eq!(s.retries, 0);
            assert!(s.latency_p50_ms > 0.0);
            assert!(s.latency_p99_ms >= s.latency_p50_ms);
            assert!(s.shares_index);
        }
        assert_eq!(report.completed(), 3);
        assert_eq!(report.index_sharers, 3);
        assert_eq!(report.indexed_streams, 3);
        assert!((report.index_share() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn idle_reload_is_all_or_nothing_and_epoch_fenced() {
        let mut server: Server<usize> = Server::new(shared_scene(), 1);
        let old_fp = server.shared().fingerprint();
        let old_arc = Arc::clone(server.shared());
        assert_eq!(server.scene_epoch(), 0);

        // Failed reload: typed error, nothing swapped, epoch untouched.
        let err = server
            .reload_scene(SceneSource::Bytes(vec![0u8; 64], LoadPolicy::Strict))
            .expect_err("garbage bytes must not load");
        assert!(matches!(err, AssetError::BadMagic { .. }));
        assert_eq!(server.scene_epoch(), 0);
        assert!(Arc::ptr_eq(server.shared(), &old_arc));

        // Same-fingerprint reload: success, epoch bumps, allocations kept.
        let bytes = asset::encode_scene(server.shared().scene());
        let outcome = server
            .reload_scene(SceneSource::Bytes(bytes, LoadPolicy::Strict))
            .expect("clean bytes load");
        assert_eq!(outcome.epoch, 1);
        assert!(!outcome.changed);
        assert_eq!(outcome.fingerprint, old_fp);
        assert!(
            Arc::ptr_eq(server.shared(), &old_arc),
            "no-op swap keeps the Arc"
        );

        // Different scene: success, swap visible, epoch bumps again.
        let other = EVALUATED_SCENES[2].generate_scaled(0.02);
        let outcome = server
            .reload_scene(SceneSource::Shared(Box::new(SharedScene::new(other))))
            .expect("in-memory scene swaps");
        assert!(outcome.changed);
        assert_eq!(outcome.epoch, 2);
        assert_ne!(server.shared().fingerprint(), old_fp);
        assert_eq!(server.scene_epoch(), 2);
    }

    #[test]
    fn empty_and_zero_frame_servers_terminate() {
        let mut server: Server<usize> = Server::new(shared_scene(), 1);
        let report = server.run();
        assert_eq!(report.total_frames, 0);
        let shared = shared_scene();
        let cfg = SequenceConfig::new(
            CameraPath::orbit(shared.scene().center, 1.0, 1.0, 0.1),
            0,
            32,
            32,
        );
        let mut server = Server::new(shared, 2);
        server.add_stream(StreamSpec::new("empty", cfg, |f| f.splats.len()));
        let report = server.run();
        assert_eq!(report.total_frames, 0);
        assert_eq!(report.streams[0].frames.len(), 0);
        assert_eq!(report.streams[0].phase, StreamPhase::Completed);
    }

    #[test]
    fn oldest_first_never_lets_a_stream_fall_behind() {
        // One-worker pool → dispatch order is fully policy-driven; record
        // the service order and check the lag bound.
        let shared = shared_scene();
        let mut server = Server::new(shared, 1);
        let log = Arc::new(Mutex::new(Vec::new()));
        for k in 0..3usize {
            let cfg = SequenceConfig::new(
                CameraPath::orbit(server.shared().scene().center, 2.0, 1.0, 0.05),
                4,
                32,
                24,
            );
            let log = Arc::clone(&log);
            server.add_stream(StreamSpec::new(format!("s{k}"), cfg, move |f| {
                log.lock().unwrap().push((k, f.index));
                f.index
            }));
        }
        server.run();
        let log = log.lock().unwrap();
        assert_eq!(log.len(), 12);
        // After every prefix, completed-frame counts differ by at most 1.
        let mut counts = [0usize; 3];
        for &(k, _) in log.iter() {
            counts[k] += 1;
            let lo = counts.iter().min().unwrap();
            let hi = counts.iter().max().unwrap();
            assert!(hi - lo <= 1, "unfair schedule: {counts:?}");
        }
    }

    /// A panicking backend must be contained: the faulting stream is
    /// reported `Failed(Panicked)` with the payload, every other stream
    /// completes, and the server (and its pool) stay usable.
    #[test]
    fn panicking_stream_is_contained_not_fatal() {
        for threads in [1usize, 2] {
            let shared = shared_scene();
            let mk_cfg = |shared: &SharedScene| {
                SequenceConfig::new(
                    CameraPath::orbit(shared.scene().center, 2.0, 1.0, 0.05),
                    3,
                    32,
                    24,
                )
            };
            let cfg = mk_cfg(&shared);
            let cfg2 = mk_cfg(&shared);
            let mut server = Server::new(shared, threads);
            server.add_stream(StreamSpec::new("boom", cfg, |_| -> usize {
                panic!("backend failure (expected in this test)")
            }));
            server.add_stream(StreamSpec::new("calm", cfg2, |f| f.splats.len()));
            let report = server.run();
            let boom = report.stream("boom").expect("reported");
            match &boom.phase {
                StreamPhase::Failed(StreamFault::Panicked { message, frame }) => {
                    assert!(
                        message.contains("backend failure (expected in this test)"),
                        "threads={threads}: payload lost: {message}"
                    );
                    assert_eq!(*frame, 0);
                }
                p => panic!("threads={threads}: expected Failed(Panicked), got {p:?}"),
            }
            assert_eq!(boom.frames.len(), 0);
            let calm = report.stream("calm").expect("reported");
            assert_eq!(calm.phase, StreamPhase::Completed, "threads={threads}");
            assert_eq!(calm.frames.len(), 3);
            // The server is still serviceable: rerun completes the calm
            // stream again (the panicking one fails again, contained).
            let again = server.run();
            assert_eq!(again.stream("calm").unwrap().frames.len(), 3);
            assert_eq!(again.failed(), 1);
        }
    }

    #[test]
    fn transient_backend_errors_are_retried_to_success() {
        let shared = shared_scene();
        let cfg = SequenceConfig::new(
            CameraPath::orbit(shared.scene().center, 2.0, 1.0, 0.05),
            3,
            32,
            24,
        );
        let mut server = Server::new(shared, 1);
        let mut failures_left = 2u32;
        server.add_stream(
            StreamSpec::fallible("flaky", cfg, move |f| {
                if f.index == 1 && failures_left > 0 {
                    failures_left -= 1;
                    return Err(DrawError::backend("spurious", true));
                }
                Ok(f.splats.len())
            })
            .with_retry(RetryPolicy {
                base_delay_ms: 0.0,
                max_delay_ms: 0.0,
                ..RetryPolicy::default()
            }),
        );
        let report = server.run();
        let s = &report.streams[0];
        assert_eq!(s.phase, StreamPhase::Completed);
        assert_eq!(s.frames.len(), 3);
        assert_eq!(s.retries, 2);
    }

    #[test]
    fn permanent_backend_errors_fail_without_retries() {
        let shared = shared_scene();
        let cfg = SequenceConfig::new(
            CameraPath::orbit(shared.scene().center, 2.0, 1.0, 0.05),
            3,
            32,
            24,
        );
        let mut server = Server::new(shared, 1);
        server.add_stream(StreamSpec::fallible(
            "doomed",
            cfg,
            |f| -> Result<usize, DrawError> {
                if f.index == 1 {
                    Err(DrawError::backend("broken lens", false))
                } else {
                    Ok(f.splats.len())
                }
            },
        ));
        let report = server.run();
        let s = &report.streams[0];
        match &s.phase {
            StreamPhase::Failed(StreamFault::Render { error, retries }) => {
                assert_eq!(*retries, 0, "permanent errors must not retry");
                assert!(!error.is_transient());
            }
            p => panic!("expected Failed(Render), got {p:?}"),
        }
        assert_eq!(s.frames.len(), 1, "frame 0 was produced before the fault");
    }

    #[test]
    fn rerun_replays_warm_but_bit_exact() {
        let shared = shared_scene();
        let mut server = Server::new(shared, 1);
        let cfg = orbit_cfg(server.shared(), 0.0, 3);
        server.add_stream(StreamSpec::vrpipe(
            "s0",
            cfg,
            GpuConfig::default(),
            PipelineVariant::Het,
        ));
        let a = server.run();
        let b = server.run();
        let stats = |r: &ServeReport<SequenceFrameRecord>| {
            r.streams[0]
                .frames
                .iter()
                .map(|f| f.stats.clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(stats(&a), stats(&b));
        // Counters are per-run (baselined), not session-lifetime: each
        // report covers exactly its own three frames.
        assert_eq!(a.streams[0].resort.frames, 3);
        assert_eq!(b.streams[0].resort.frames, 3);
        assert_eq!(a.streams[0].cull.frames, 3);
        assert_eq!(b.streams[0].cull.frames, 3);
    }

    #[test]
    fn idle_detach_removes_and_attach_readmits() {
        let shared = shared_scene();
        let mut server = Server::new(shared, 1);
        let cfg = orbit_cfg(server.shared(), 0.0, 2);
        let cfg2 = orbit_cfg(server.shared(), 0.3, 2);
        let a = server.add_stream(StreamSpec::vrpipe(
            "a",
            cfg,
            GpuConfig::default(),
            PipelineVariant::Het,
        ));
        let b = server.add_stream(StreamSpec::vrpipe(
            "b",
            cfg2,
            GpuConfig::default(),
            PipelineVariant::Het,
        ));
        assert_ne!(a, b);
        assert!(server.detach(a));
        assert!(!server.detach(a), "double detach is a no-op");
        assert_eq!(server.stream_count(), 1);
        let report = server.run();
        assert_eq!(report.streams.len(), 1);
        assert_eq!(report.streams[0].name, "b");
    }

    #[test]
    fn reject_admission_hands_the_spec_back() {
        let shared = shared_scene();
        let mut server = Server::new(shared, 1).with_admission(1, AdmissionPolicy::Reject);
        let cfg = orbit_cfg(server.shared(), 0.0, 1);
        let cfg2 = orbit_cfg(server.shared(), 0.1, 1);
        let first = server.attach(StreamSpec::vrpipe(
            "first",
            cfg,
            GpuConfig::default(),
            PipelineVariant::Het,
        ));
        assert!(first.id().is_some());
        match server.attach(StreamSpec::vrpipe(
            "second",
            cfg2,
            GpuConfig::default(),
            PipelineVariant::Het,
        )) {
            AttachOutcome::Rejected { spec, capacity } => {
                assert_eq!(spec.name(), "second");
                assert_eq!(capacity, 1);
            }
            AttachOutcome::Admitted { .. } => panic!("capacity 1 must reject the second stream"),
        }
        assert_eq!(server.stream_count(), 1);
    }

    #[test]
    fn deadline_policy_serves_urgent_streams_first() {
        // One worker, two deadline streams with very different periods:
        // EDF must start the tight-deadline stream first even though the
        // relaxed one was registered first.
        let shared = shared_scene();
        let mut server = Server::new(shared, 1).with_policy(SchedulePolicy::Deadline);
        let order = Arc::new(Mutex::new(Vec::new()));
        for (k, period) in [(0usize, 10_000.0), (1usize, 1_000.0)] {
            let cfg = SequenceConfig::new(
                CameraPath::orbit(server.shared().scene().center, 2.0, 1.0, 0.05),
                2,
                32,
                24,
            );
            let order = Arc::clone(&order);
            server.add_stream(
                StreamSpec::new(format!("s{k}"), cfg, move |f| {
                    order.lock().unwrap().push((k, f.index));
                    f.index
                })
                .with_deadline_ms(period),
            );
        }
        let report = server.run();
        assert_eq!(report.completed(), 2);
        let order = order.lock().unwrap();
        assert_eq!(order.len(), 4);
        assert_eq!(order[0].0, 1, "tight deadline must be served first");
        assert_eq!(
            report
                .streams
                .iter()
                .map(|s| s.deadline_misses)
                .sum::<usize>(),
            0,
            "generous periods must not be missed"
        );
    }

    #[test]
    fn retry_backoff_is_deterministic_and_bounded() {
        let p = RetryPolicy::default();
        for attempt in 0..8 {
            let a = p.backoff_ms(3, 7, attempt);
            let b = p.backoff_ms(3, 7, attempt);
            assert_eq!(a, b, "same key must give the same delay");
            assert!(a >= 0.5 * p.base_delay_ms);
            assert!(a <= p.max_delay_ms);
        }
        assert_ne!(
            p.backoff_ms(0, 0, 0),
            p.backoff_ms(1, 0, 0),
            "jitter must differ across streams"
        );
        assert_eq!(RetryPolicy::none().max_retries, 0);
    }

    #[test]
    fn faulted_runs_rewind_bit_exact_from_frame_zero() {
        // The rewind-fix satellite: after a failed run, the session's
        // sorter warm start and CullState epochs are invalidated, so the
        // healed rerun replays from a cold frame 0 — bit-exact with the
        // very first (cold) run.
        let shared = shared_scene();
        let mut server = Server::new(shared, 1);
        let cfg = orbit_cfg(server.shared(), 0.0, 3);
        let id = server.add_stream(StreamSpec::vrpipe(
            "healed",
            cfg,
            GpuConfig::default(),
            PipelineVariant::Het,
        ));
        let clean = server.run();
        assert_eq!(clean.streams[0].phase, StreamPhase::Completed);
        let clean_stats: Vec<_> = clean.streams[0]
            .frames
            .iter()
            .map(|f| f.stats.clone())
            .collect();

        // Break it mid-sequence, then heal and rerun.
        server.set_faults(id, FaultInjector::at(2, FaultKind::Error));
        let broken = server.run();
        assert!(matches!(
            broken.streams[0].phase,
            StreamPhase::Failed(StreamFault::Render { .. })
        ));
        assert_eq!(broken.streams[0].frames.len(), 2);
        assert_eq!(
            broken.streams[0].retries,
            RetryPolicy::default().max_retries,
            "persistent transient-classified faults must exhaust retries"
        );

        server.set_faults(id, FaultInjector::none());
        let healed = server.run();
        assert_eq!(healed.streams[0].phase, StreamPhase::Completed);
        let healed_stats: Vec<_> = healed.streams[0]
            .frames
            .iter()
            .map(|f| f.stats.clone())
            .collect();
        assert_eq!(
            healed_stats, clean_stats,
            "rerun must be bit-exact from frame 0"
        );
        // Cold start is visible in the resort counters: frame 0 cannot be
        // warm-started after the reset (matches the very first run).
        assert_eq!(
            healed.streams[0].resort.repaired,
            clean.streams[0].resort.repaired
        );
    }

    #[test]
    fn percentile_edge_cases() {
        assert_eq!(percentile(&[], 0.50), 0.0);
        assert_eq!(percentile(&[], 0.99), 0.0);
        let single = [7.5];
        assert_eq!(percentile(&single, 0.0), 7.5);
        assert_eq!(percentile(&single, 0.50), 7.5);
        assert_eq!(percentile(&single, 1.0), 7.5);
        let dup = [2.0, 2.0, 2.0, 2.0];
        assert_eq!(percentile(&dup, 0.50), 2.0);
        assert_eq!(percentile(&dup, 0.99), 2.0);
        let two = [1.0, 3.0];
        assert_eq!(percentile(&two, 0.0), 1.0);
        assert_eq!(percentile(&two, 1.0), 3.0);
        // q past 1.0 clamps to the last element instead of indexing out.
        assert_eq!(percentile(&two, 2.0), 3.0);
    }

    #[test]
    fn backoff_saturates_at_large_attempt() {
        let policy = RetryPolicy::default();
        // The exponential term is capped by max_delay_ms; the shift is
        // clamped so huge attempt numbers neither overflow nor panic.
        for attempt in [20, 21, 63, 64, 1_000, u32::MAX] {
            let d = policy.backoff_ms(3, 5, attempt);
            assert!(d.is_finite());
            assert!(
                d >= policy.max_delay_ms * 0.5 && d <= policy.max_delay_ms,
                "attempt {attempt}: {d} outside jittered saturation band"
            );
        }
        // Deterministic: same (stream, frame, attempt) → same delay.
        assert_eq!(
            policy.backoff_ms(3, 5, u32::MAX),
            policy.backoff_ms(3, 5, u32::MAX)
        );
        // Early attempts still grow before the cap bites.
        assert!(policy.backoff_ms(0, 0, 0) <= policy.backoff_ms(0, 0, 30) + policy.max_delay_ms);
    }

    #[test]
    fn watchdog_budget_is_k_times_period_and_clamped() {
        let mut server: Server<usize> = Server::new(shared_scene(), 1);
        let cfg = orbit_cfg(server.shared(), 0.0, 2);
        let backend = StreamSpec::new("deadline", cfg.clone(), |_| 0usize).with_deadline_ms(25.0);
        server.add_stream(backend);
        // Default k = 4 → budget = 4 × 25 ms.
        assert_eq!(server.stall_budget(0), Some(100.0));
        server = server.with_watchdog(2.5);
        assert_eq!(server.stall_budget(0), Some(62.5));
        // k clamps at 1.0: the budget can never undercut one period.
        server = server.with_watchdog(0.0);
        assert_eq!(server.stall_budget(0), Some(25.0));
        // No deadline → no stall budget (watchdog disarmed).
        let free = StreamSpec::new("free", cfg, |_| 0usize);
        server.add_stream(free);
        assert_eq!(server.stall_budget(1), None);
    }

    #[test]
    fn brownout_target_prefers_lowest_priority_with_headroom() {
        let mut server: Server<usize> = Server::new(shared_scene(), 1);
        let cfg = orbit_cfg(server.shared(), 0.0, 2);
        let mk = |name: &str, prio: i32, ladder: QualityLadder| {
            StreamSpec::new(name.to_string(), cfg.clone(), |_| 0usize)
                .with_priority(prio)
                .with_ladder(ladder)
        };
        // vip: high priority, no ladder headroom — structurally immune.
        server.add_stream(mk("vip", 10, QualityLadder::new()));
        // bulk-a/bulk-b: same low priority, headroom; registration order
        // breaks the tie.
        server.add_stream(mk("bulk-a", 0, QualityLadder::standard()));
        server.add_stream(mk("bulk-b", 0, QualityLadder::standard()));
        // mid: between, with headroom.
        server.add_stream(mk("mid", 5, QualityLadder::standard()));
        for e in &mut server.streams {
            e.sched.phase = StreamPhase::Running;
        }
        assert_eq!(server.brownout_target(), Some(1), "lowest priority first");
        // Floor bulk-a: next candidate is bulk-b, not mid or vip.
        server.streams[1].sched.rung = 2;
        assert_eq!(server.brownout_target(), Some(2));
        server.streams[2].sched.rung = 2;
        assert_eq!(server.brownout_target(), Some(3), "then the mid tier");
        server.streams[3].sched.rung = 2;
        assert_eq!(
            server.brownout_target(),
            None,
            "vip has no headroom: never a target"
        );
        // Non-running streams are skipped even with headroom.
        server.streams[1].sched.rung = 0;
        server.streams[1].sched.phase = StreamPhase::Completed;
        assert_eq!(server.brownout_target(), None);
    }

    // ---- cross-stream batched preprocessing ----

    /// FNV-1a digest of everything frame-bit-relevant in a frame input:
    /// the emitted splat stream and the preprocessing counters. `cull`
    /// is deliberately excluded — batched frames account culling work in
    /// the shared round state ([`ServeReport::batch`]), which is the one
    /// counter batching is allowed to move.
    fn splat_digest(f: &FrameInput<'_>) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in format!("{}|{:?}|{:?}", f.index, f.splats, f.preprocess).into_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0100_0000_01b3);
        }
        h
    }

    /// Axis-aligned −z flythrough: the camera basis is bit-identical
    /// across frames and across power-of-two x/y eye offsets, so every
    /// such stream is provably a pure translation of every other.
    fn translated_flythrough(
        shared: &SharedScene,
        dx: f32,
        dy: f32,
        frames: usize,
    ) -> SequenceConfig {
        let c = shared.scene().center;
        let start = Vec3::new(c.x + dx, c.y + dy, c.z + 6.0);
        SequenceConfig::new(
            CameraPath::flythrough(start, start + Vec3::new(0.0, 0.0, -8.0), 0.25, 0.01),
            frames,
            64,
            48,
        )
        .with_index()
    }

    fn digest_spec(name: &str, cfg: SequenceConfig) -> StreamSpec<u64> {
        StreamSpec::new(name, cfg, |f| splat_digest(&f))
    }

    /// A fleet of translation-bound flythrough streams batches, and every
    /// stream's frames stay bit-exact with the same server run unbatched
    /// — on serial and threaded pools.
    #[test]
    fn translation_fleet_batches_and_stays_bit_exact() {
        const FRAMES: usize = 4;
        let offsets = [(0.0, 0.0), (0.5, 0.0), (0.0, 0.25), (0.5, 0.25)];
        let run = |batching: bool, threads: usize| {
            let shared = shared_scene();
            let mut server = Server::new(shared, threads);
            if batching {
                server = server.with_batching();
            }
            for (k, &(dx, dy)) in offsets.iter().enumerate() {
                let cfg = translated_flythrough(server.shared(), dx, dy, FRAMES);
                server.add_stream(digest_spec(&format!("s{k}"), cfg));
            }
            server.run()
        };
        let solo = run(false, 2);
        assert_eq!(solo.batch, BatchStats::default(), "batching is opt-in");
        assert!(solo.streams.iter().all(|s| s.frames_batched == 0));
        for threads in [1usize, 4] {
            let batched = run(true, threads);
            for (b, s) in batched.streams.iter().zip(&solo.streams) {
                assert_eq!(b.phase, StreamPhase::Completed, "{}", b.name);
                assert_eq!(b.frames, s.frames, "{} bit-parity", b.name);
                assert_eq!(b.produced, s.produced, "{}", b.name);
            }
            let stats = &batched.batch;
            assert_eq!(stats.dispatched_frames(), offsets.len() * FRAMES);
            assert!(
                stats.batched_frames > 0,
                "fleet must actually batch: {stats:?}"
            );
            assert_eq!(
                stats
                    .occupancy
                    .iter()
                    .enumerate()
                    .map(|(i, n)| (i + 1) * n)
                    .sum::<usize>(),
                stats.dispatched_frames(),
                "occupancy histogram accounts every dispatched frame"
            );
            let per_stream: usize = batched.streams.iter().map(|s| s.frames_batched).sum();
            assert_eq!(per_stream, stats.batched_frames);
        }
    }

    /// A lone stereo stream self-pairs: both eyes of every pair ride one
    /// round (occupancy 2 on 100% of eligible frames) and stay bit-exact
    /// with the unbatched run.
    #[test]
    fn stereo_stream_self_pairs_every_frame() {
        const FRAMES: usize = 6; // three eye pairs
        let run = |batching: bool| {
            let shared = shared_scene();
            let mut server = Server::new(shared, 2);
            if batching {
                server = server.with_batching();
            }
            let c = server.shared().scene().center;
            let start = Vec3::new(c.x, c.y, c.z + 6.0);
            let cfg = SequenceConfig::new(
                CameraPath::flythrough(start, start + Vec3::new(0.0, 0.0, -8.0), 0.25, 0.01)
                    .stereo(0.065),
                FRAMES,
                64,
                48,
            )
            .with_index();
            server.add_stream(digest_spec("hmd", cfg));
            server.run()
        };
        let solo = run(false);
        let batched = run(true);
        assert_eq!(batched.streams[0].phase, StreamPhase::Completed);
        assert_eq!(batched.streams[0].frames, solo.streams[0].frames);
        let stats = &batched.batch;
        assert_eq!(stats.rounds, FRAMES / 2, "one round per eye pair");
        assert_eq!(stats.batched_rounds, stats.rounds, "100% pair occupancy");
        assert_eq!(stats.occupancy, vec![0, FRAMES / 2]);
        assert_eq!(stats.solo_frames, 0);
        assert_eq!(batched.streams[0].frames_batched, FRAMES);
        assert!(stats.fallback_ratio().abs() < 1e-12);
        assert!((stats.mean_occupancy() - 2.0).abs() < 1e-12);
    }

    /// Rotation-distinct orbit streams can never prove membership: every
    /// frame demonstrably falls back to the exact solo path — full
    /// per-stream session cull accounting, identical records.
    #[test]
    fn unprovable_deltas_fall_back_to_the_solo_path() {
        const FRAMES: usize = 3;
        let run = |batching: bool| {
            let shared = shared_scene();
            let mut server = Server::new(shared, 2);
            if batching {
                server = server.with_batching();
            }
            for k in 0..3 {
                let cfg = orbit_cfg(server.shared(), k as f32 * 0.2, FRAMES);
                server.add_stream(StreamSpec::vrpipe(
                    format!("s{k}"),
                    cfg,
                    GpuConfig::default(),
                    PipelineVariant::HetQm,
                ));
            }
            server.run()
        };
        let solo = run(false);
        let batched = run(true);
        let stats = &batched.batch;
        assert_eq!(stats.batched_frames, 0, "orbits must not batch: {stats:?}");
        assert_eq!(stats.solo_frames, 3 * FRAMES);
        assert_eq!(stats.occupancy, vec![3 * FRAMES]);
        assert!((stats.fallback_ratio() - 1.0).abs() < 1e-12);
        for (b, s) in batched.streams.iter().zip(&solo.streams) {
            assert_eq!(b.frames_batched, 0, "{}", b.name);
            assert_eq!(b.cull, s.cull, "{}", b.name);
            assert_eq!(b.cull.frames as usize, FRAMES, "{}", b.name);
        }
    }
}
