//! Property-based tests for the VR-Pipe extensions: QRU invariants, merge
//! correctness, and cross-variant image equivalence on randomized scenes.

use gpu_sim::config::GpuConfig;
use gpu_sim::quad::Quad;
use gpu_sim::tiles::{QuadPos, TileId};
use gsplat::math::{Vec2, Vec3};
use gsplat::splat::Splat;
use proptest::prelude::*;
use vrpipe::qm::{plan_warps, WarpSlot};
use vrpipe::{draw, PipelineVariant};

fn quad_at(pos_idx: u8, splat: u32) -> Quad {
    let pos = QuadPos {
        x: pos_idx % 8,
        y: pos_idx / 8,
    };
    Quad {
        tile: TileId { x: 0, y: 0 },
        pos,
        origin: (pos.x as u32 * 2, pos.y as u32 * 2),
        coverage: 0xF,
        splat,
    }
}

fn splat_strategy() -> impl Strategy<Value = Splat> {
    (
        1.0f32..31.0,  // cx
        1.0f32..31.0,  // cy
        0.5f32..12.0,  // r major
        0.5f32..12.0,  // r minor
        0.05f32..0.95, // opacity
        1.0f32..100.0, // depth
        0.0f32..1.0,   // color seed
    )
        .prop_map(|(cx, cy, rx, ry, opacity, depth, c)| Splat {
            center: Vec2::new(cx, cy),
            depth,
            conic: (1.0 / (rx * rx), 0.0, 1.0 / (ry * ry)),
            axis_major: Vec2::new(rx * 2.5, 0.0),
            axis_minor: Vec2::new(0.0, ry * 2.5),
            color: Vec3::new(c, 1.0 - c, 0.5),
            opacity,
            source: 0,
        })
}

proptest! {
    /// QRU invariants for arbitrary bins of up to 128 quads: every quad is
    /// planned exactly once, pairs share a position with front before back,
    /// no warp exceeds 8 slots, and the bitmap matches the pairs.
    #[test]
    fn qru_plan_invariants(positions in proptest::collection::vec(0u8..64, 0..128)) {
        let bin: Vec<Quad> = positions
            .iter()
            .enumerate()
            .map(|(i, &p)| quad_at(p, i as u32))
            .collect();
        let plan = plan_warps(&bin);

        let mut seen = vec![0u32; bin.len()];
        let mut bitmap_check = 0u128;
        for warp in &plan.warps {
            let slots: usize = warp.iter().map(WarpSlot::slots).sum();
            prop_assert!(slots <= 8, "warp over 8 quad slots");
            for slot in warp {
                match *slot {
                    WarpSlot::Single(i) => seen[i] += 1,
                    WarpSlot::Pair(f, b) => {
                        seen[f] += 1;
                        seen[b] += 1;
                        prop_assert!(f < b, "pair front must precede back in bin order");
                        prop_assert_eq!(bin[f].pos, bin[b].pos, "pair positions differ");
                        bitmap_check |= 1 << f;
                        bitmap_check |= 1 << b;
                    }
                }
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1), "quad planned {seen:?} times");
        prop_assert_eq!(bitmap_check, plan.merge_bitmap);
        // Pair count is the maximum possible given consecutive pairing.
        let mut expected_pairs = 0usize;
        let mut counts = [0usize; 64];
        for &p in &positions { counts[p as usize] += 1; }
        for c in counts { expected_pairs += c / 2; }
        prop_assert_eq!(plan.pairs, expected_pairs);
    }

    /// QM renders the same image as the baseline (associative regrouping
    /// only), for arbitrary splat sets.
    #[test]
    fn qm_image_equals_baseline(mut splats in proptest::collection::vec(splat_strategy(), 1..60)) {
        splats.sort_by(|a, b| a.depth.partial_cmp(&b.depth).unwrap());
        for (i, s) in splats.iter_mut().enumerate() { s.source = i as u32; }
        let cfg = GpuConfig::default();
        let base = draw(&splats, 32, 32, &cfg, PipelineVariant::Baseline);
        let qm = draw(&splats, 32, 32, &cfg, PipelineVariant::Qm);
        let diff = base.color.max_abs_diff(&qm.color);
        prop_assert!(diff < 1e-4, "QM image diverged by {diff}");
    }

    /// HET only removes visually negligible contributions: the image stays
    /// within ~1 quantization step of the baseline, and never more work is
    /// done than the baseline.
    #[test]
    fn het_image_close_and_work_reduced(mut splats in proptest::collection::vec(splat_strategy(), 1..60)) {
        splats.sort_by(|a, b| a.depth.partial_cmp(&b.depth).unwrap());
        for (i, s) in splats.iter_mut().enumerate() { s.source = i as u32; }
        let cfg = GpuConfig::default();
        let base = draw(&splats, 32, 32, &cfg, PipelineVariant::Baseline);
        let het = draw(&splats, 32, 32, &cfg, PipelineVariant::Het);
        prop_assert!(base.color.max_abs_diff(&het.color) < 3.0 / 255.0);
        prop_assert!(het.stats.crop_fragments <= base.stats.crop_fragments);
        prop_assert!(het.stats.shaded_fragments <= base.stats.shaded_fragments);
    }

    /// Serving is scheduling-invariant: a seeded shuffle of the stream
    /// service order ([`SchedulePolicy::Seeded`]) never changes any
    /// stream's output bits relative to the default oldest-frame-first
    /// schedule — for any seed, i.e. for any interleaving of stream
    /// frames the scheduler can produce.
    #[test]
    fn interleaved_scheduling_never_changes_stream_bits(seed in 0u64..u64::MAX) {
        use gsplat::camera::CameraPath;
        use gsplat::scene::{Scene, EVALUATED_SCENES};
        use std::sync::OnceLock;
        use vrpipe::{
            SchedulePolicy, SequenceConfig, Server, SharedScene, StreamSpec,
        };

        fn scene() -> &'static Scene {
            static SCENE: OnceLock<Scene> = OnceLock::new();
            SCENE.get_or_init(|| EVALUATED_SCENES[4].generate_scaled(0.02))
        }

        /// Per-frame digest: pipeline stats + preprocess stats formatted,
        /// enough to pin the whole frame (stats include every counter the
        /// image feeds).
        fn run_with(policy: SchedulePolicy) -> Vec<Vec<String>> {
            let s = scene();
            let mut server =
                Server::new(SharedScene::new(s.clone()), 1).with_policy(policy);
            for k in 0..3 {
                let path = CameraPath::orbit(
                    s.center,
                    s.view_radius,
                    0.8 + 0.3 * k as f32,
                    0.04 * (k as f32 + 1.0),
                );
                let cfg = SequenceConfig::new(path, 3, 40, 30).with_index();
                server.add_stream(StreamSpec::vrpipe(
                    format!("s{k}"),
                    cfg,
                    GpuConfig::default(),
                    PipelineVariant::HetQm,
                ));
            }
            server
                .run()
                .streams
                .into_iter()
                .map(|s| {
                    s.frames
                        .into_iter()
                        .map(|f| format!("{:?}|{:?}|{:?}", f.stats, f.preprocess, f.cull))
                        .collect()
                })
                .collect()
        }

        fn reference() -> &'static Vec<Vec<String>> {
            static REF: OnceLock<Vec<Vec<String>>> = OnceLock::new();
            REF.get_or_init(|| run_with(SchedulePolicy::OldestFirst))
        }

        let shuffled = run_with(SchedulePolicy::Seeded(seed));
        prop_assert_eq!(reference(), &shuffled, "seed {} changed stream bits", seed);
    }

    /// Work-counter invariants hold for every variant: blended fragments
    /// never exceed shaded, which never exceed rasterized.
    #[test]
    fn fragment_funnel_is_monotone(
        mut splats in proptest::collection::vec(splat_strategy(), 1..40),
        variant_idx in 0usize..4,
    ) {
        splats.sort_by(|a, b| a.depth.partial_cmp(&b.depth).unwrap());
        for (i, s) in splats.iter_mut().enumerate() { s.source = i as u32; }
        let v = PipelineVariant::ALL[variant_idx];
        let out = draw(&splats, 32, 32, &GpuConfig::default(), v);
        let s = &out.stats;
        prop_assert!(s.shaded_fragments <= s.raster_fragments);
        prop_assert!(s.crop_fragments <= s.shaded_fragments);
        prop_assert!(s.crop_quads <= s.raster_quads);
        prop_assert!(s.warp_quad_slots_used <= s.warps_launched * 8);
    }
}
