//! # gscore — a GSCore-like dedicated 3DGS accelerator model
//!
//! The paper compares VR-Pipe against GSCore (ASPLOS 2024), a specialised
//! accelerator for Gaussian splatting, in Fig. 22. GSCore outperforms
//! VR-Pipe because its datapath is tailored to splatting:
//!
//! * **Shape-aware intersection** culls Gaussian-tile pairs with an OBB
//!   test before any rasterisation work.
//! * **Hierarchical sorting** sorts only tile-local key ranges.
//! * **Subtile skipping** evaluates a 4×4-subtile alpha bound and skips
//!   subtiles whose peak contribution is below the pruning threshold.
//! * **Exact early termination** at fragment granularity inside the
//!   volume-rendering cores (no stencil round-trip).
//!
//! This crate provides a transaction-level cost model with the same
//! functional fragment accounting as the other renderers, so the Fig. 22
//! slowdown comparison is apples-to-apples.

use gsplat::blend::{fragment_alpha, EARLY_TERMINATION_THRESHOLD};
use gsplat::splat::Splat;
use serde::{Deserialize, Serialize};

/// GSCore hardware configuration (the ASPLOS'24 configuration scaled to
/// the same clock as the Table I GPU).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GsCoreConfig {
    /// Volume-rendering core (VRC) count.
    pub vr_cores: u32,
    /// Fragments each VRC blends per cycle.
    pub frags_per_cycle_per_core: u32,
    /// Gaussians the culling & conversion unit processes per cycle.
    pub ccu_gaussians_per_cycle: f64,
    /// Sort throughput in keys per cycle (hierarchical bitonic sorter).
    pub sort_keys_per_cycle: f64,
    /// Subtile edge in pixels for subtile skipping.
    pub subtile_px: u32,
    /// Core clock in MHz (matched to the GPU for cycle comparability).
    pub core_freq_mhz: u32,
}

impl Default for GsCoreConfig {
    fn default() -> Self {
        Self {
            vr_cores: 16,
            frags_per_cycle_per_core: 1,
            ccu_gaussians_per_cycle: 0.5,
            sort_keys_per_cycle: 4.0,
            subtile_px: 4,
            core_freq_mhz: 612,
        }
    }
}

/// Work counters and cycle estimate for one GSCore frame.
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GsCoreStats {
    /// Gaussian-tile pairs after shape-aware intersection.
    pub intersected_pairs: u64,
    /// Subtiles visited.
    pub subtiles_visited: u64,
    /// Subtiles skipped by the alpha-bound test.
    pub subtiles_skipped: u64,
    /// Fragments blended (after subtile skipping, pruning and exact early
    /// termination).
    pub blended_fragments: u64,
    /// Estimated execution cycles.
    pub cycles: u64,
}

/// Estimates GSCore's execution for a depth-sorted splat list.
///
/// The per-pixel blend state is tracked exactly (transmittance form), with
/// termination applied at fragment granularity, subtile skipping at
/// `subtile_px` granularity, and OBB intersection at tile granularity.
///
/// # Examples
///
/// ```
/// use gscore::{estimate, GsCoreConfig};
/// use gsplat::{preprocess::preprocess, scene::EVALUATED_SCENES};
///
/// let scene = EVALUATED_SCENES[4].generate_scaled(0.04);
/// let cam = scene.default_camera();
/// let pre = preprocess(&scene, &cam);
/// let stats = estimate(&pre.splats, cam.width(), cam.height(), &GsCoreConfig::default());
/// assert!(stats.cycles > 0);
/// ```
pub fn estimate(splats: &[Splat], width: u32, height: u32, cfg: &GsCoreConfig) -> GsCoreStats {
    let mut stats = GsCoreStats::default();
    let tile = 16u32;
    let tiles_x = width.div_ceil(tile);
    let tiles_y = height.div_ceil(tile);

    // Shape-aware intersection: OBB-tile tests instead of AABB.
    let mut tile_lists: Vec<Vec<u32>> = vec![Vec::new(); (tiles_x * tiles_y) as usize];
    for (i, s) in splats.iter().enumerate() {
        let (lo, hi) = s.aabb();
        if hi.x < 0.0 || hi.y < 0.0 || lo.x >= width as f32 || lo.y >= height as f32 {
            continue;
        }
        let tx0 = (lo.x.max(0.0) as u32).min(width - 1) / tile;
        let ty0 = (lo.y.max(0.0) as u32).min(height - 1) / tile;
        let tx1 = (hi.x.max(0.0) as u32).min(width - 1) / tile;
        let ty1 = (hi.y.max(0.0) as u32).min(height - 1) / tile;
        for ty in ty0..=ty1 {
            for tx in tx0..=tx1 {
                // Shape-aware refinement: reject tiles whose nearest point
                // to the splat center falls outside the OBB.
                if obb_intersects_tile(s, tx * tile, ty * tile, tile, width, height) {
                    tile_lists[(ty * tiles_x + tx) as usize].push(i as u32);
                    stats.intersected_pairs += 1;
                }
            }
        }
    }

    // Per-tile volume rendering with subtile skipping + exact ET.
    let st = cfg.subtile_px;
    for ty in 0..tiles_y {
        for tx in 0..tiles_x {
            let list = &tile_lists[(ty * tiles_x + tx) as usize];
            if list.is_empty() {
                continue;
            }
            render_tile(
                splats,
                list,
                tx * tile,
                ty * tile,
                tile,
                st,
                width,
                height,
                &mut stats,
            );
        }
    }

    // Pipelined stages: preprocess/sort overlap with rendering; the
    // longest stage dominates (plus a small fill).
    let ccu = splats.len() as f64 / cfg.ccu_gaussians_per_cycle;
    let sort = stats.intersected_pairs as f64 / cfg.sort_keys_per_cycle;
    let blend = stats.blended_fragments as f64
        / (cfg.vr_cores as f64 * cfg.frags_per_cycle_per_core as f64);
    // Four subtile-bound evaluators per VRC test bounds in parallel with
    // blending.
    let subtile_overhead = stats.subtiles_visited as f64 / (cfg.vr_cores as f64 * 4.0);
    stats.cycles = (ccu.max(sort).max(blend + subtile_overhead)).ceil() as u64;
    stats
}

/// Conservative OBB vs tile test (shape-aware intersection).
fn obb_intersects_tile(s: &Splat, x0: u32, y0: u32, tile: u32, width: u32, height: u32) -> bool {
    let x1 = (x0 + tile).min(width) as f32;
    let y1 = (y0 + tile).min(height) as f32;
    // Closest point of the tile rectangle to the splat center.
    let cx = s.center.x.clamp(x0 as f32, x1);
    let cy = s.center.y.clamp(y0 as f32, y1);
    // Inside the OBB (in axis coordinates) at that point?
    let d = gsplat::math::Vec2::new(cx - s.center.x, cy - s.center.y);
    let major_len2 = s.axis_major.length_squared().max(1e-12);
    let minor_len2 = s.axis_minor.length_squared().max(1e-12);
    let a = d.dot(s.axis_major) / major_len2;
    let b = d.dot(s.axis_minor) / minor_len2;
    a.abs() <= 1.0 && b.abs() <= 1.0
}

#[allow(clippy::too_many_arguments)]
fn render_tile(
    splats: &[Splat],
    list: &[u32],
    x0: u32,
    y0: u32,
    tile: u32,
    subtile: u32,
    width: u32,
    height: u32,
    stats: &mut GsCoreStats,
) {
    let n = (tile * tile) as usize;
    let mut alpha_acc = vec![0.0f32; n];
    let mut trans = vec![1.0f32; n];
    for &si in list {
        let s = &splats[si as usize];
        let mut sy = 0;
        while sy < tile {
            let mut sx = 0;
            while sx < tile {
                let sub_x = x0 + sx;
                let sub_y = y0 + sy;
                if sub_x >= width || sub_y >= height {
                    sx += subtile;
                    continue;
                }
                stats.subtiles_visited += 1;
                // Subtile skipping: bound the peak alpha over the subtile
                // by evaluating at the point closest to the splat center.
                let cx = s.center.x.clamp(sub_x as f32, (sub_x + subtile) as f32);
                let cy = s.center.y.clamp(sub_y as f32, (sub_y + subtile) as f32);
                let peak = s.alpha_at(gsplat::math::Vec2::new(cx, cy));
                if peak < gsplat::blend::ALPHA_PRUNE_THRESHOLD {
                    stats.subtiles_skipped += 1;
                    sx += subtile;
                    continue;
                }
                for dy in 0..subtile {
                    for dx in 0..subtile {
                        let px = sub_x + dx;
                        let py = sub_y + dy;
                        if px >= width || py >= height {
                            continue;
                        }
                        let t = ((py - y0) * tile + (px - x0)) as usize;
                        if alpha_acc[t] >= EARLY_TERMINATION_THRESHOLD {
                            continue; // exact per-fragment early termination
                        }
                        let fdx = px as f32 + 0.5 - s.center.x;
                        let fdy = py as f32 + 0.5 - s.center.y;
                        if let Some(a) = fragment_alpha(s.opacity, s.conic, fdx, fdy) {
                            alpha_acc[t] += trans[t] * a;
                            trans[t] *= 1.0 - a;
                            stats.blended_fragments += 1;
                        }
                    }
                }
                sx += subtile;
            }
            sy += subtile;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsplat::math::{Vec2, Vec3};

    fn stacked(n: usize, opacity: f32) -> Vec<Splat> {
        (0..n)
            .map(|i| Splat {
                center: Vec2::new(16.0, 16.0),
                depth: 1.0 + i as f32,
                conic: (0.02, 0.0, 0.02),
                axis_major: Vec2::new(14.0, 0.0),
                axis_minor: Vec2::new(0.0, 14.0),
                color: Vec3::splat(0.5),
                opacity,
                source: i as u32,
            })
            .collect()
    }

    #[test]
    fn estimates_nonzero_work() {
        let s = estimate(&stacked(20, 0.5), 32, 32, &GsCoreConfig::default());
        assert!(s.cycles > 0);
        assert!(s.blended_fragments > 0);
        assert!(s.intersected_pairs > 0);
    }

    #[test]
    fn subtile_skipping_skips_far_subtiles() {
        // A small splat in a big tile: most subtiles skipped.
        let mut splats = stacked(1, 0.9);
        splats[0].axis_major = Vec2::new(2.0, 0.0);
        splats[0].axis_minor = Vec2::new(0.0, 2.0);
        splats[0].conic = (1.0, 0.0, 1.0);
        let s = estimate(&splats, 32, 32, &GsCoreConfig::default());
        assert!(s.subtiles_skipped > 0);
        assert!(s.subtiles_skipped < s.subtiles_visited);
    }

    #[test]
    fn early_termination_caps_fragments() {
        let deep = estimate(&stacked(200, 0.9), 32, 32, &GsCoreConfig::default());
        let shallow = estimate(&stacked(10, 0.9), 32, 32, &GsCoreConfig::default());
        // 20x the splats must not produce 20x the blended fragments.
        assert!(deep.blended_fragments < shallow.blended_fragments * 10);
    }

    #[test]
    fn shape_aware_intersection_culls_corner_tiles() {
        // A thin diagonal splat: its AABB covers many tiles, the OBB fewer.
        let mut splats = stacked(1, 0.9);
        let d = std::f32::consts::FRAC_1_SQRT_2;
        splats[0].center = Vec2::new(32.0, 32.0);
        splats[0].axis_major = Vec2::new(30.0 * d, 30.0 * d);
        splats[0].axis_minor = Vec2::new(-2.0 * d, 2.0 * d);
        let s = estimate(&splats, 64, 64, &GsCoreConfig::default());
        // The AABB covers 16 tiles; the diagonal OBB intersects fewer.
        assert!(s.intersected_pairs < 16, "pairs = {}", s.intersected_pairs);
    }
}
