//! Offline stand-in for `criterion`: the subset this workspace's bench
//! targets use, measured with `std::time::Instant`.
//!
//! Each benchmark warms up briefly, then takes `sample_size` samples of an
//! iteration count tuned so one sample lasts a few milliseconds, and
//! reports the median ns/iter on stdout as
//!
//! ```text
//! bench <group>/<id> ... median 12.345 us/iter (10 samples x 420 iters)
//! ```
//!
//! Environment:
//! * `BENCH_SAMPLE_MS` — target milliseconds per sample (default 5).

use std::fmt::Display;
use std::hint;
use std::time::Instant;

/// Opaque value barrier (re-export shape of `criterion::black_box`).
#[inline]
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// A benchmark identifier, optionally `function/parameter` shaped.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function/parameter` identifier.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        Self {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] runs the measurement.
pub struct Bencher<'a> {
    label: String,
    sample_size: usize,
    results: &'a mut Vec<BenchResult>,
}

/// One benchmark's measurement summary.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Full benchmark label (`group/id`).
    pub label: String,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
    /// Samples taken.
    pub samples: usize,
    /// Iterations per sample.
    pub iters: u64,
}

fn target_sample_ms() -> f64 {
    std::env::var("BENCH_SAMPLE_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|ms: &f64| *ms > 0.0)
        .unwrap_or(5.0)
}

impl Bencher<'_> {
    /// Measures `routine`, reporting the median time per iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Pilot run: how long does one iteration take?
        let start = Instant::now();
        black_box(routine());
        let pilot = start.elapsed().as_secs_f64().max(1e-9);

        let target = target_sample_ms() * 1e-3;
        let iters = ((target / pilot).ceil() as u64).clamp(1, 1_000_000);
        let samples = self.sample_size.max(2);

        let mut times_ns = Vec::with_capacity(samples);
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            times_ns.push(start.elapsed().as_secs_f64() * 1e9 / iters as f64);
        }
        times_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        let median_ns = times_ns[times_ns.len() / 2];

        let (value, unit) = human_time(median_ns);
        println!(
            "bench {} ... median {value:.3} {unit}/iter ({samples} samples x {iters} iters)",
            self.label
        );
        self.results.push(BenchResult {
            label: self.label.clone(),
            median_ns,
            samples,
            iters,
        });
    }
}

fn human_time(ns: f64) -> (f64, &'static str) {
    if ns >= 1e9 {
        (ns / 1e9, "s")
    } else if ns >= 1e6 {
        (ns / 1e6, "ms")
    } else if ns >= 1e3 {
        (ns / 1e3, "us")
    } else {
        (ns, "ns")
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: BenchmarkId, mut f: F) {
        let mut b = Bencher {
            label: format!("{}/{}", self.name, id.id),
            sample_size: self.sample_size,
            results: &mut self.criterion.results,
        };
        f(&mut b);
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        self.run(id.into(), f);
        self
    }

    /// Benchmarks `f` with a borrowed input under `id`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run(id.into(), |b| f(b, input));
        self
    }

    /// Ends the group (kept for API parity; groups have no shared state to
    /// flush in the shim).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            criterion: self,
        }
    }

    /// Benchmarks `f` as a standalone (group-less) benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            label: id.to_string(),
            sample_size: 10,
            results: &mut self.results,
        };
        f(&mut b);
        self
    }

    /// All results measured so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }
}

/// Declares a benchmark group entry point (API-compatible subset).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::from_parameter(4u32), &4u32, |b, &n| {
            b.iter(|| (0..n).sum::<u32>())
        });
        group.finish();
        c.bench_function("shim/standalone", |b| b.iter(|| black_box(2 + 2)));
    }

    #[test]
    fn measures_and_records() {
        std::env::set_var("BENCH_SAMPLE_MS", "1");
        let mut c = Criterion::default();
        sample_bench(&mut c);
        assert_eq!(c.results().len(), 2);
        assert!(c.results().iter().all(|r| r.median_ns > 0.0));
        assert_eq!(c.results()[0].label, "shim/4");
    }
}
