//! Offline stand-in for `proptest`: deterministic sampling without
//! shrinking.
//!
//! Supports the subset this workspace uses: the [`proptest!`] macro with
//! `name in strategy` bindings, range / tuple / [`Strategy::prop_map`]
//! strategies, [`collection::vec`] and [`collection::hash_set`],
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!`.
//!
//! Each test runs a fixed number of cases from a seed derived from the
//! test name, so failures reproduce exactly across runs and machines.
//! There is no shrinking: the failing sample is reported as-is by the
//! panic message.

pub use rand;
use rand::rngs::StdRng;
use rand::Rng;

/// Cases sampled per `proptest!` test.
pub const CASES: u32 = 64;

/// Why a sampled case did not complete.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` — resampled, not a failure.
    Reject,
}

/// FNV-1a hash used to derive a per-test seed from its name.
pub const fn fnv1a(s: &str) -> u64 {
    let bytes = s.as_bytes();
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    let mut i = 0;
    while i < bytes.len() {
        hash ^= bytes[i] as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        i += 1;
    }
    hash
}

/// A source of sampled values (sampling subset of `proptest::Strategy`).
pub trait Strategy {
    /// The sampled type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps sampled values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;
    use std::collections::HashSet;
    use std::hash::Hash;

    /// A collection length specification: a fixed size or a range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        /// Exclusive upper bound.
        hi: usize,
    }

    impl SizeRange {
        fn sample(&self, rng: &mut StdRng) -> usize {
            if self.lo + 1 >= self.hi {
                self.lo
            } else {
                rng.gen_range(self.lo..self.hi)
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec`s of `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for `HashSet`s of `element` with a target length in `size`.
    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`hash_set`].
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> HashSet<S::Value> {
            let target = self.size.sample(rng).max(1);
            let mut out = HashSet::with_capacity(target);
            // Bounded attempts: a narrow element domain may not hold
            // `target` distinct values.
            for _ in 0..target * 64 {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.sample(rng));
            }
            out
        }
    }
}

/// Everything the tests import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Strategy};
}

/// Asserts a condition inside a `proptest!` case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a `proptest!` case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a `proptest!` case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Rejects the current case (resampled without counting as a run).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Binds `name in strategy` parameters inside the generated test body.
#[doc(hidden)]
#[macro_export]
macro_rules! __bind_params {
    ($rng:expr $(,)?) => {};
    ($rng:expr, $binding:pat in $strat:expr $(, $($rest:tt)*)?) => {
        let $binding = $crate::Strategy::sample(&($strat), $rng);
        $crate::__bind_params!($rng $(, $($rest)*)?)
    };
}

/// Declares property tests: each `fn name(bindings) { body }` becomes a
/// `#[test]` running [`CASES`] sampled cases.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$attr:meta])* fn $name:ident ( $($params:tt)* ) $body:block )*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let seed = $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)));
                let mut completed = 0u32;
                let mut attempts = 0u64;
                while completed < $crate::CASES {
                    assert!(
                        attempts < $crate::CASES as u64 * 256,
                        "prop_assume rejected too many cases"
                    );
                    let mut rng = <$crate::rand::rngs::StdRng as $crate::rand::SeedableRng>
                        ::seed_from_u64(seed.wrapping_add(attempts.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
                    attempts += 1;
                    let mut case = || {
                        $crate::__bind_params!(&mut rng, $($params)*);
                        $body
                        ::core::result::Result::Ok(())
                    };
                    let outcome: ::core::result::Result<(), $crate::TestCaseError> = case();
                    match outcome {
                        ::core::result::Result::Ok(()) => completed += 1,
                        ::core::result::Result::Err($crate::TestCaseError::Reject) => {}
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn even() -> impl Strategy<Value = u32> {
        (0u32..1000).prop_map(|v| v * 2)
    }

    proptest! {
        #[test]
        fn ranges_and_tuples((a, b) in (0u32..10, 5usize..9), c in 0.0f32..=1.0) {
            prop_assert!(a < 10);
            prop_assert!((5..9).contains(&b));
            prop_assert!((0.0..=1.0).contains(&c));
        }

        #[test]
        fn mapped_strategy_applies(v in even()) {
            prop_assert_eq!(v % 2, 0);
        }

        #[test]
        fn collections_respect_sizes(
            v in crate::collection::vec(0u8..4, 2..6),
            s in crate::collection::hash_set(0u64..1000, 1..16),
            fixed in crate::collection::vec(0u8..4, 3),
        ) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(!s.is_empty() && s.len() < 16);
            prop_assert_eq!(fixed.len(), 3);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }
}
