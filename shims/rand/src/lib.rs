//! Offline stand-in for `rand` 0.8: the subset this workspace uses.
//!
//! [`rngs::StdRng`] is a xoshiro256++ generator seeded through SplitMix64
//! — deterministic across platforms and runs, which is all the procedural
//! scene generator and the microbenchmarks require. The streams differ
//! from the real `rand::rngs::StdRng` (ChaCha12), so regenerated scenes
//! are *stable within this repository* but not bit-identical to ones
//! produced with the crates.io dependency.

/// Seedable random generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface (subset of `rand::Rng`).
pub trait Rng {
    /// The generator's next 64 raw bits.
    fn next_u64(&mut self) -> u64;

    /// Samples uniformly from a range, e.g. `rng.gen_range(0..10)` or
    /// `rng.gen_range(-1.0..1.0f32)`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        unit_f64(self.next_u64()) < p
    }
}

/// A type with a uniform sampler over `[lo, hi)` / `[lo, hi]` (subset of
/// `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws one uniform sample from `[lo, hi)`, or `[lo, hi]` when
    /// `inclusive`.
    fn sample_uniform<R: Rng>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

/// A range that can be sampled uniformly (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

// Blanket impls over a single generic parameter, like the real crate, so
// `gen_range(-1.0..1.0)` infers the float width from the call site.
impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample<R: Rng>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample<R: Rng>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_uniform(rng, lo, hi, true)
    }
}

#[inline]
fn unit_f64(bits: u64) -> f64 {
    // 53 explicit mantissa bits -> uniform in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: Rng>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(i8, i16, i32, i64, u8, u16, u32, u64, usize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: Rng>(rng: &mut R, lo: Self, hi: Self, _inclusive: bool) -> Self {
                lo + (hi - lo) * unit_f64(rng.next_u64()) as $t
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// Concrete generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as the xoshiro authors recommend.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let i = rng.gen_range(-4..=4i32);
            assert!((-4..=4).contains(&i));
            let u = rng.gen_range(0..3u32);
            assert!(u < 3);
            let f = rng.gen_range(-1.0..1.0f32);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_probability_roughly_holds() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits = {hits}");
    }
}
