//! Offline stand-in for `serde`: the marker traits plus no-op derives.
//!
//! `use serde::{Deserialize, Serialize}` imports both the trait (type
//! namespace) and the derive macro (macro namespace), exactly like the
//! real crate.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
