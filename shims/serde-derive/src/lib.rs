//! No-op derive macros standing in for `serde_derive` in offline builds.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as a
//! forward-compatibility marker; nothing serializes through serde (the
//! bench harness emits its JSON manually). Deriving nothing is therefore
//! behaviour-preserving.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
